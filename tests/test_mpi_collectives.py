"""Tests for mini-MPI collectives (all algorithm branches)."""

import numpy as np
import pytest

from repro.cluster import MemRef, World, run_spmd
from repro.hardware import platform_a
from repro.mpi import MpiParams, MpiWorld
from repro.mpi import collectives as coll
from repro.util.errors import CommunicationError
from repro.util.units import KiB, MiB


def make_mpi(nodes=2, **params):
    w = World(platform_a(with_quirk=False), num_nodes=nodes)
    return w, MpiWorld(w, MpiParams(**params) if params else None)


def href(ctx, arr):
    return MemRef.host(ctx.node, arr)


class TestBarrier:
    def test_barrier_synchronizes(self):
        w, mpi = make_mpi()
        after = []

        def prog(ctx):
            ctx.sim.sleep(ctx.rank * 1e-3)
            coll.barrier(mpi.comm_world(ctx.rank))
            after.append(ctx.sim.now)

        run_spmd(w, prog)
        assert max(after) - min(after) < 1e-4  # all release near-together
        assert min(after) >= 7e-3  # nobody leaves before the slowest arrives

    def test_single_rank_barrier(self):
        w = World(platform_a(), num_nodes=1, ranks_per_node=1, devices_per_rank=1)
        mpi = MpiWorld(w)
        run_spmd(w, lambda ctx: coll.barrier(mpi.comm_world(ctx.rank)))


class TestBcast:
    @pytest.mark.parametrize("count,desc", [(64, "binomial"), (256 * KiB, "vandegeijn")])
    def test_bcast_delivers_everywhere(self, count, desc):
        w, mpi = make_mpi()
        out = {}

        def prog(ctx):
            comm = mpi.comm_world(ctx.rank)
            data = np.zeros(count, dtype=np.float64)
            if ctx.rank == 2:
                data[:] = np.arange(count)
            coll.bcast(comm, href(ctx, data), root=2)
            out[ctx.rank] = data.copy()

        run_spmd(w, prog)
        for r in range(8):
            np.testing.assert_array_equal(out[r], np.arange(count, dtype=np.float64))

    def test_bad_root_rejected(self):
        w, mpi = make_mpi(nodes=1)

        def prog(ctx):
            coll.bcast(mpi.comm_world(ctx.rank), href(ctx, np.zeros(4)), root=77)

        with pytest.raises(CommunicationError, match="root"):
            run_spmd(w, prog)

    def test_long_bcast_faster_than_binomial_for_big_messages(self):
        """The van de Geijn branch must beat a forced binomial tree for
        big messages on a multi-node cluster (that is why the switch
        exists: the tree pays log(nodes) serial full-message NIC hops)."""
        size = 8 * MiB

        def run(threshold):
            w = World(platform_a(with_quirk=False), num_nodes=8)
            mpi = MpiWorld(w, MpiParams(bcast_long_threshold=threshold))

            def prog(ctx):
                comm = mpi.comm_world(ctx.rank)
                buf = ctx.device.malloc(size, virtual=True)
                coll.bcast(comm, MemRef.device(buf), root=0)

            return run_spmd(w, prog).elapsed

        assert run(threshold=512 * KiB) < run(threshold=size + 1)


class TestReduce:
    def test_sum_to_root(self):
        w, mpi = make_mpi()
        out = {}

        def prog(ctx):
            comm = mpi.comm_world(ctx.rank)
            send = np.full(16, float(ctx.rank), dtype=np.float64)
            recv = np.zeros(16, dtype=np.float64) if ctx.rank == 3 else None
            coll.reduce(
                comm,
                href(ctx, send),
                None if recv is None else href(ctx, recv),
                np.float64,
                root=3,
            )
            if ctx.rank == 3:
                out["v"] = recv.copy()

        run_spmd(w, prog)
        np.testing.assert_allclose(out["v"], sum(range(8)))

    def test_other_ops(self):
        w, mpi = make_mpi(nodes=1)
        out = {}

        def prog(ctx):
            comm = mpi.comm_world(ctx.rank)
            send = np.array([float(ctx.rank + 1)])
            recv = np.zeros(1) if ctx.rank == 0 else None
            coll.reduce(
                comm,
                href(ctx, send),
                None if recv is None else href(ctx, recv),
                np.float64,
                op=np.maximum,
                root=0,
            )
            if ctx.rank == 0:
                out["max"] = recv[0]

        run_spmd(w, prog)
        assert out["max"] == 4.0

    def test_root_without_buffer_rejected(self):
        w, mpi = make_mpi(nodes=1)

        def prog(ctx):
            coll.reduce(
                mpi.comm_world(ctx.rank), href(ctx, np.zeros(4)), None, np.float64
            )

        with pytest.raises(CommunicationError, match="receive buffer"):
            run_spmd(w, prog)


class TestAllreduce:
    @pytest.mark.parametrize("count", [16, 64 * 1024])  # both branches
    def test_sum_everywhere(self, count):
        w, mpi = make_mpi()
        out = {}

        def prog(ctx):
            comm = mpi.comm_world(ctx.rank)
            send = np.full(count, float(ctx.rank), dtype=np.float64)
            recv = np.zeros(count, dtype=np.float64)
            coll.allreduce(comm, href(ctx, send), href(ctx, recv), np.float64)
            out[ctx.rank] = recv.copy()

        run_spmd(w, prog)
        expected = float(sum(range(8)))
        for r in range(8):
            np.testing.assert_allclose(out[r], expected)

    def test_non_power_of_two_ranks(self):
        """Platform B single node with 3 ranks exercises the fold path."""
        w = World(platform_a(with_quirk=False), num_nodes=1, ranks_per_node=3)
        mpi = MpiWorld(w)
        out = {}

        def prog(ctx):
            comm = mpi.comm_world(ctx.rank)
            send = np.array([float(2**ctx.rank)])
            recv = np.zeros(1)
            coll.allreduce(comm, href(ctx, send), href(ctx, recv), np.float64)
            out[ctx.rank] = recv[0]

        run_spmd(w, prog)
        assert all(v == 7.0 for v in out.values())

    def test_size_mismatch_rejected(self):
        w, mpi = make_mpi(nodes=1)

        def prog(ctx):
            coll.allreduce(
                mpi.comm_world(ctx.rank),
                href(ctx, np.zeros(4)),
                href(ctx, np.zeros(8)),
                np.float64,
            )

        with pytest.raises(CommunicationError, match="equal size"):
            run_spmd(w, prog)

    def test_virtual_device_allreduce_times_only(self):
        """Paper-scale collectives: virtual device buffers run the full
        algorithm for timing without data."""
        w, mpi = make_mpi()

        def prog(ctx):
            comm = mpi.comm_world(ctx.rank)
            send = MemRef.device(ctx.device.malloc(4 * MiB, virtual=True))
            recv = MemRef.device(ctx.device.malloc(4 * MiB, virtual=True))
            coll.allreduce(comm, send, recv, np.float64)

        res = run_spmd(w, prog)
        assert res.elapsed > 0


class TestAllgather:
    def test_gathers_in_rank_order(self):
        w, mpi = make_mpi()
        out = {}

        def prog(ctx):
            comm = mpi.comm_world(ctx.rank)
            send = np.full(4, float(ctx.rank), dtype=np.float64)
            recv = np.zeros(4 * comm.size, dtype=np.float64)
            coll.allgather(comm, href(ctx, send), href(ctx, recv))
            out[ctx.rank] = recv.copy()

        run_spmd(w, prog)
        expected = np.repeat(np.arange(8, dtype=np.float64), 4)
        for r in range(8):
            np.testing.assert_array_equal(out[r], expected)

    def test_wrong_recv_size_rejected(self):
        w, mpi = make_mpi(nodes=1)

        def prog(ctx):
            coll.allgather(
                mpi.comm_world(ctx.rank),
                href(ctx, np.zeros(4)),
                href(ctx, np.zeros(4)),
            )

        with pytest.raises(CommunicationError, match="allgather"):
            run_spmd(w, prog)
