"""Tests for the GASNet-EX conduit: segments, RMA, events, AMs."""

import numpy as np
import pytest

from repro.cluster import MemRef, World, run_spmd
from repro.gasnet import GasnetConduit, GasnetParams
from repro.hardware import platform_a
from repro.util.errors import CommunicationError
from repro.util.units import KiB, MiB


def make_world(nodes=2):
    return World(platform_a(with_quirk=False), num_nodes=nodes)


def setup_segments(world, conduit, size=1 * KiB):
    """Give every rank a device segment; returns (buffers, segments)."""
    buffers, segments = [], []
    for ctx in world.ranks:
        buf = ctx.device.malloc(size, label=f"seg{ctx.rank}")
        seg = conduit.client(ctx.rank).attach_segment(MemRef.device(buf))
        buffers.append(buf)
        segments.append(seg)
    return buffers, segments


class TestSegments:
    def test_device_segment_base_is_device_address(self):
        w = make_world()
        conduit = GasnetConduit(w)
        buf = w.ranks[0].device.malloc(256)
        seg = conduit.client(0).attach_segment(MemRef.device(buf))
        assert seg.base_address == buf.address

    def test_overlapping_segments_rejected(self):
        w = make_world()
        conduit = GasnetConduit(w)
        buf = w.ranks[0].device.malloc(256)
        conduit.client(0).attach_segment(MemRef.device(buf))
        with pytest.raises(CommunicationError, match="overlaps"):
            conduit.client(0).attach_segment(MemRef.device(buf, offset=64, nbytes=64))

    def test_segment_resolve_bounds(self):
        w = make_world()
        conduit = GasnetConduit(w)
        buf = w.ranks[0].device.malloc(256)
        seg = conduit.client(0).attach_segment(MemRef.device(buf))
        ref = seg.resolve(buf.address + 16, 32)
        assert ref.nbytes == 32
        with pytest.raises(CommunicationError, match="outside segment"):
            seg.resolve(buf.address + 250, 32)


class TestPutGet:
    def test_put_moves_data(self):
        w = make_world()
        conduit = GasnetConduit(w)
        buffers, _ = setup_segments(w, conduit)
        src_data = np.arange(16, dtype=np.float64)

        def prog(ctx):
            if ctx.rank == 0:
                local = ctx.device.malloc(128)
                local.as_array(np.float64)[:] = src_data
                ev = conduit.client(0).put_nb(
                    4, buffers[4].address, MemRef.device(local)
                )
                ev.wait()
            ctx.world.global_barrier.wait()

        run_spmd(w, prog)
        np.testing.assert_array_equal(
            buffers[4].as_array(np.float64, count=16), src_data
        )

    def test_get_fetches_data(self):
        w = make_world()
        conduit = GasnetConduit(w)
        buffers, _ = setup_segments(w, conduit)
        buffers[5].as_array(np.int32)[:] = 77
        out = {}

        def prog(ctx):
            if ctx.rank == 0:
                local = ctx.device.malloc(64)
                conduit.client(0).get_nb(5, buffers[5].address, MemRef.device(local)).wait()
                out["data"] = local.as_array(np.int32).copy()

        run_spmd(w, prog)
        np.testing.assert_array_equal(out["data"], 77)

    def test_put_to_unregistered_address_rejected(self):
        w = make_world()
        conduit = GasnetConduit(w)

        def prog(ctx):
            if ctx.rank == 0:
                local = ctx.device.malloc(64)
                conduit.client(0).put_nb(1, 0xDEAD, MemRef.device(local))

        with pytest.raises(CommunicationError, match="no attached segment"):
            run_spmd(w, prog)

    def test_event_test_then_wait(self):
        w = make_world()
        conduit = GasnetConduit(w)
        buffers, _ = setup_segments(w, conduit, size=1 * MiB)
        observed = []

        def prog(ctx):
            if ctx.rank == 0:
                local = ctx.device.malloc(1 * MiB)
                ev = conduit.client(0).put_nb(4, buffers[4].address, MemRef.device(local))
                observed.append(ev.test())
                ev.wait()
                observed.append(ev.test())

        run_spmd(w, prog)
        assert observed == [False, True]

    def test_sync_all_drains_pending(self):
        w = make_world()
        conduit = GasnetConduit(w)
        buffers, _ = setup_segments(w, conduit, size=64 * KiB)

        def prog(ctx):
            if ctx.rank == 0:
                client = conduit.client(0)
                local = ctx.device.malloc(64 * KiB)
                for offset in range(0, 64 * KiB, 16 * KiB):
                    client.put_nb(
                        4,
                        buffers[4].address + offset,
                        MemRef.device(local, offset=offset, nbytes=16 * KiB),
                    )
                assert client.pending_count > 0
                client.sync_all()
                assert client.pending_count == 0

        run_spmd(w, prog)

    def test_get_costs_more_than_put_software(self):
        """Get has higher initiator overhead than put (round-trip match)."""
        results = {}
        for op in ("put", "get"):
            w = make_world()
            conduit = GasnetConduit(w)
            buffers, _ = setup_segments(w, conduit)

            def prog(ctx, op=op):
                if ctx.rank == 0:
                    local = ctx.device.malloc(8)
                    client = conduit.client(0)
                    if op == "put":
                        client.put_nb(4, buffers[4].address, MemRef.device(local)).wait()
                    else:
                        client.get_nb(4, buffers[4].address, MemRef.device(local)).wait()

            results[op] = run_spmd(w, prog).elapsed
        assert results["get"] > results["put"]

    def test_large_message_more_efficient(self):
        """Pipelined large puts achieve a higher bandwidth fraction."""
        params = GasnetParams()
        achieved = {}
        for size in (1 * MiB, 8 * MiB):
            w = make_world()
            conduit = GasnetConduit(w, params)
            buffers = []
            for ctx in w.ranks:
                buf = ctx.device.malloc(8 * MiB, virtual=True)
                conduit.client(ctx.rank).attach_segment(MemRef.device(buf))
                buffers.append(buf)
            recs = []

            def prog(ctx, size=size):
                if ctx.rank == 0:
                    local = ctx.device.malloc(size, virtual=True)
                    recs.append(
                        conduit.client(0)
                        .put_nb(4, buffers[4].address, MemRef.device(local, nbytes=size))
                        .wait()
                    )

            run_spmd(w, prog)
            achieved[size] = recs[0].achieved_bandwidth
        assert achieved[8 * MiB] > achieved[1 * MiB]


class TestActiveMessages:
    def test_request_reply(self):
        w = make_world()
        conduit = GasnetConduit(w)
        replies = []

        def prog(ctx):
            client = conduit.client(ctx.rank)
            client.register_handler("double", lambda src, x: x * 2)
            ctx.world.global_barrier.wait()
            if ctx.rank == 0:
                replies.append(client.am_request(5, "double", 21).wait())
            ctx.world.global_barrier.wait()

        run_spmd(w, prog)
        assert replies == [42]

    def test_missing_handler_rejected(self):
        w = make_world()
        conduit = GasnetConduit(w)

        def prog(ctx):
            if ctx.rank == 0:
                conduit.client(0).am_request(1, "nope", None).wait()

        with pytest.raises(CommunicationError, match="no AM handler"):
            run_spmd(w, prog)

    def test_duplicate_handler_rejected(self):
        w = make_world()
        conduit = GasnetConduit(w)
        client = conduit.client(0)
        client.register_handler("h", lambda s, p: None)
        with pytest.raises(CommunicationError, match="already registered"):
            client.register_handler("h", lambda s, p: None)

    def test_handler_can_mutate_target_state(self):
        w = make_world()
        conduit = GasnetConduit(w)
        store = {}

        def prog(ctx):
            client = conduit.client(ctx.rank)
            client.register_handler(
                "store", lambda src, kv: store.__setitem__(*kv)
            )
            ctx.world.global_barrier.wait()
            if ctx.rank == 3:
                client.am_request(6, "store", ("key", "value")).wait()
            ctx.world.global_barrier.wait()

        run_spmd(w, prog)
        assert store == {"key": "value"}
