"""Tests for the Cannon ring-exchange matrix multiplication."""

import numpy as np
import pytest

from repro.apps import CannonConfig, cannon_reference, run_cannon
from repro.cluster import World
from repro.hardware import platform_a, platform_b
from repro.util.errors import ConfigurationError


def assemble_c(results, cfg, nranks):
    ordered = sorted(results, key=lambda r: r["rank"])
    return np.concatenate([r["C"] for r in ordered])


class TestCorrectness:
    @pytest.mark.parametrize("impl", ["diomp", "mpi"])
    def test_matches_reference_single_node(self, impl):
        w = World(platform_a(with_quirk=False), num_nodes=1)
        cfg = CannonConfig(n=32, execute=True)
        res = run_cannon(w, cfg, impl=impl)
        np.testing.assert_allclose(
            assemble_c(res.results, cfg, 4), cannon_reference(cfg, 4)
        )

    @pytest.mark.parametrize("impl", ["diomp", "mpi"])
    def test_matches_reference_multi_node(self, impl):
        w = World(platform_a(with_quirk=False), num_nodes=2)
        cfg = CannonConfig(n=40, execute=True)
        res = run_cannon(w, cfg, impl=impl)
        np.testing.assert_allclose(
            assemble_c(res.results, cfg, 8), cannon_reference(cfg, 8)
        )

    def test_matches_reference_platform_b(self):
        w = World(platform_b(), num_nodes=1)  # 8 GCDs
        cfg = CannonConfig(n=24, execute=True)
        res = run_cannon(w, cfg, impl="diomp")
        np.testing.assert_allclose(
            assemble_c(res.results, cfg, 8), cannon_reference(cfg, 8)
        )

    def test_indivisible_size_rejected(self):
        w = World(platform_a(with_quirk=False), num_nodes=1)
        with pytest.raises(ConfigurationError, match="divide"):
            run_cannon(w, CannonConfig(n=30, execute=True))

    def test_unknown_impl_rejected(self):
        w = World(platform_a(with_quirk=False), num_nodes=1)
        with pytest.raises(ConfigurationError, match="implementation"):
            run_cannon(w, CannonConfig(n=32), impl="nccl")


class TestTiming:
    def _elapsed(self, impl, nodes, n=2048):
        w = World(platform_a(with_quirk=False), num_nodes=nodes)
        cfg = CannonConfig(n=n, execute=False)
        res = run_cannon(w, cfg, impl=impl)
        return max(r["elapsed"] for r in res.results)

    def test_virtual_mode_produces_time(self):
        assert self._elapsed("diomp", 1) > 0

    def test_diomp_not_slower_than_mpi(self):
        """Fig. 7's headline: DiOMP wins (MPI pays host staging
        intra-node and heavier per-message software)."""
        assert self._elapsed("diomp", 2) <= self._elapsed("mpi", 2)

    def test_strong_scaling_reduces_time(self):
        """More nodes -> less wall-clock at the paper's N=30240 (the
        compute-bound regime; small N is genuinely comm-bound)."""
        w1 = World(platform_a(with_quirk=False), num_nodes=1)
        w2 = World(platform_a(with_quirk=False), num_nodes=2)
        cfg = CannonConfig(n=30240, execute=False)
        t1 = max(r["elapsed"] for r in run_cannon(w1, cfg, impl="diomp").results)
        t2 = max(r["elapsed"] for r in run_cannon(w2, cfg, impl="diomp").results)
        assert t2 < t1
