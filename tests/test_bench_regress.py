"""Tests for the benchmark regression gate (``repro.bench.regress``)."""

import json

import pytest

from repro.bench.regress import (
    GATED_METRICS,
    MetricSpec,
    compare,
    load_snapshot,
    main,
    render_report,
    write_snapshot,
)


class TestMetricSpec:
    def test_lower_is_better(self):
        spec = MetricSpec(0.05, better="lower")
        assert not spec.regressed(1.0, 1.04)
        assert spec.regressed(1.0, 1.06)
        assert not spec.regressed(1.0, 0.5)  # improvement

    def test_higher_is_better(self):
        spec = MetricSpec(0.05, better="higher")
        assert not spec.regressed(100.0, 96.0)
        assert spec.regressed(100.0, 94.0)
        assert not spec.regressed(100.0, 200.0)

    def test_zero_baseline_uses_absolute_threshold(self):
        spec = MetricSpec(0.1)
        assert not spec.regressed(0.0, 0.05)
        assert spec.regressed(0.0, 0.2)

    def test_gated_metrics_have_sane_directions(self):
        for name, spec in GATED_METRICS.items():
            assert spec.better in ("lower", "higher")
            # Bandwidth, throughput, completion counts, and boolean
            # selection indicators go up; times and shed load go down.
            # The saturated point's alert count also goes up: losing
            # the burn-rate page at saturation is the regression.
            # Plan pass-rewrite counts go up too: coalescing or
            # overlapping fewer ops means the optimizer weakened.
            expected = (
                "higher"
                if name.startswith("bandwidth")
                or name.endswith("selected")
                or name.endswith("per_sec")
                or name.endswith("throughput")
                or name.endswith("completed")
                or name.endswith("sat.alerts")
                or name.endswith("coalesced")
                or name.endswith("overlapped")
                else "lower"
            )
            assert spec.better == expected


class TestCompare:
    def test_statuses(self):
        specs = {
            "lat": MetricSpec(0.05),
            "bw": MetricSpec(0.05, better="higher"),
        }
        baseline = {"lat": 1.0, "bw": 100.0, "gone": 5.0}
        current = {"lat": 1.2, "bw": 150.0, "fresh": 7.0}
        rows = {name: status for name, status, _, _ in compare(current, baseline, specs)}
        assert rows == {
            "lat": "regressed",
            "bw": "improved",
            "gone": "missing",
            "fresh": "new",
        }

    def test_identical_is_ok(self):
        metrics = {"a": 1.0, "b": 2.0}
        rows = compare(dict(metrics), dict(metrics))
        assert all(status == "ok" for _, status, _, _ in rows)

    def test_render_report_lists_every_metric(self):
        rows = compare({"a": 1.0, "c": 3.0}, {"a": 1.0, "b": 2.0})
        text = render_report(rows)
        for token in ("a", "b", "c", "missing", "new", "ok"):
            assert token in text


class TestSnapshotIO:
    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "BENCH_x.json")
        write_snapshot(path, {"m": 1.5}, name="x")
        assert load_snapshot(path) == {"m": 1.5}
        doc = json.loads(open(path).read())
        assert doc["name"] == "x"


class TestCli:
    METRICS = {"latency.put.4B": 1e-6, "bandwidth.put.4MiB": 9e10}

    @pytest.fixture(autouse=True)
    def stub_collect(self, monkeypatch):
        # collect() runs real benchmarks; the CLI contract is tested
        # against a canned result.
        monkeypatch.setattr(
            "repro.bench.regress.collect", lambda: dict(self.METRICS)
        )

    def test_write_then_pass(self, tmp_path, capsys):
        base = str(tmp_path / "BENCH_baseline.json")
        assert main(["--write", "--baseline", base]) == 0
        assert main(["--baseline", base]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_perturbed_baseline_fails_nonzero(self, tmp_path, capsys):
        base = str(tmp_path / "BENCH_baseline.json")
        assert main(["--write", "--baseline", base]) == 0
        doc = json.loads(open(base).read())
        doc["metrics"]["latency.put.4B"] *= 0.5  # baseline was "faster"
        with open(base, "w") as fh:
            json.dump(doc, fh)
        assert main(["--baseline", base]) == 1
        out = capsys.readouterr().out
        assert "regressed" in out and "FAIL" in out

    def test_missing_baseline_exits_2(self, tmp_path):
        assert main(["--baseline", str(tmp_path / "absent.json")]) == 2

    def test_out_writes_snapshot(self, tmp_path):
        base = str(tmp_path / "BENCH_baseline.json")
        out = str(tmp_path / "BENCH_pr.json")
        main(["--write", "--baseline", base, "--out", out])
        assert load_snapshot(out) == self.METRICS

    def test_module_dispatch(self, tmp_path):
        from repro.bench.__main__ import main as bench_main

        base = str(tmp_path / "BENCH_baseline.json")
        assert bench_main(["regress", "--write", "--baseline", base]) == 0
        assert bench_main(["regress", "--baseline", base]) == 0


class TestCommittedBaseline:
    def test_gate_passes_against_repo_baseline(self):
        # The real thing, end to end: the committed baseline must match
        # what the deterministic simulator produces today.
        from pathlib import Path

        repo_root = Path(__file__).resolve().parent.parent
        baseline = repo_root / "BENCH_baseline.json"
        assert baseline.exists(), "BENCH_baseline.json must be committed"
        assert main(["--baseline", str(baseline)]) == 0
