"""Tests for streams, events, kernels, IPC and the Device facade."""

import numpy as np
import pytest

from repro.device import Device, DeviceEvent, IpcHandle, Kernel, KernelCost, PeerAccessManager, Stream
from repro.device.kernel import gemm_cost, stencil_cost
from repro.hardware import A100, platform_a, platform_b
from repro.sim import Simulator
from repro.util.errors import DeviceError


def make_device(sim=None):
    sim = sim or Simulator()
    topo = platform_a(with_quirk=False).cluster(1)
    return sim, Device(sim, topo.gpu(0, 0), A100)


class TestStream:
    def test_ops_serialize_in_order(self):
        sim = Simulator()
        s = Stream(sim)
        log = []

        def prog():
            s.enqueue(1.0, on_complete=lambda: log.append(("a", sim.now)))
            s.enqueue(2.0, on_complete=lambda: log.append(("b", sim.now)))
            s.synchronize()

        sim.spawn(prog)
        sim.run()
        assert log == [("a", 1.0), ("b", 3.0)]

    def test_synchronize_blocks_until_drained(self):
        sim = Simulator()
        s = Stream(sim)
        times = []

        def prog():
            s.enqueue(1.5)
            s.synchronize()
            times.append(sim.now)

        sim.spawn(prog)
        sim.run()
        assert times == [1.5]

    def test_idle_property(self):
        sim = Simulator()
        s = Stream(sim)
        seen = []

        def prog():
            seen.append(s.idle)
            s.enqueue(1.0)
            seen.append(s.idle)
            s.synchronize()
            seen.append(s.idle)

        sim.spawn(prog)
        sim.run()
        assert seen == [True, False, True]

    def test_enqueue_after_destroy_rejected(self):
        sim = Simulator()
        s = Stream(sim)
        s.destroy()

        def prog():
            s.enqueue(1.0)

        sim.spawn(prog)
        with pytest.raises(DeviceError, match="destroyed"):
            sim.run()

    def test_gap_between_ops_restarts_from_now(self):
        sim = Simulator()
        s = Stream(sim)
        log = []

        def prog():
            s.enqueue(1.0)
            s.synchronize()
            sim.sleep(5.0)
            s.enqueue(1.0, on_complete=lambda: log.append(sim.now))
            s.synchronize()

        sim.spawn(prog)
        sim.run()
        assert log == [7.0]


class TestStreamFaultScope:
    """Streams resolve their fault plan via the owning device, live."""

    def _latency_plan(self, latency=1.0):
        from repro.faults import FaultPlan, FaultSpec

        return FaultPlan(
            [
                FaultSpec(
                    site="stream.sync",
                    kind="latency",
                    probability=1.0,
                    latency=latency,
                )
            ],
            seed=1,
        )

    def test_streams_read_device_plan_live(self):
        # Regression: streams snapshotted device.faults at creation, so
        # a plan installed afterwards never reached existing streams.
        _, dev = make_device()
        created_before = dev.create_stream()
        plan = self._latency_plan()
        dev.faults = plan
        assert created_before.faults is plan
        assert dev.default_stream.faults is plan
        assert dev.create_stream().faults is plan

    def test_sync_draws_plan_installed_after_creation(self):
        sim, dev = make_device(None)
        stream = dev.create_stream()
        dev.faults = self._latency_plan(latency=2.0)
        times = []

        def prog():
            stream.enqueue(1.0)
            stream.synchronize()
            times.append(sim.now)

        sim.spawn(prog)
        sim.run()
        # Sync jitter overlaps the in-flight work: the injected 2.0
        # dominates the 1.0 of queued work (without the plan: 1.0).
        assert times == [2.0]

    def test_pinned_plan_wins_and_detaches(self):
        _, dev = make_device()
        stream = dev.create_stream()
        pinned = self._latency_plan()
        stream.faults = pinned
        dev.faults = self._latency_plan()
        assert stream.faults is pinned
        assert dev.default_stream.faults is dev.faults


class TestDeviceEvent:
    def test_record_query_synchronize(self):
        sim = Simulator()
        s = Stream(sim)
        ev = DeviceEvent(sim)
        observations = []

        def prog():
            s.enqueue(2.0)
            ev.record(s)
            observations.append(ev.query())
            ev.synchronize()
            observations.append((ev.query(), sim.now))

        sim.spawn(prog)
        sim.run()
        assert observations == [False, (True, 2.0)]

    def test_event_captures_point_in_time(self):
        """Work enqueued after record() does not delay the event."""
        sim = Simulator()
        s = Stream(sim)
        ev = DeviceEvent(sim)
        times = []

        def prog():
            s.enqueue(1.0)
            ev.record(s)
            s.enqueue(10.0)
            ev.synchronize()
            times.append(sim.now)

        sim.spawn(prog)
        sim.run()
        assert times == [1.0]

    def test_unrecorded_event_rejected(self):
        sim = Simulator()
        ev = DeviceEvent(sim)
        with pytest.raises(DeviceError, match="unrecorded"):
            ev.query()


class TestKernelCost:
    def test_roofline_compute_bound(self):
        cost = KernelCost(flops=1e12, bytes_moved=1.0, efficiency=1.0)
        assert cost.duration_on(A100) == pytest.approx(1e12 / A100.fp64_flops)

    def test_roofline_memory_bound(self):
        cost = KernelCost(flops=1.0, bytes_moved=2e12, efficiency=1.0)
        assert cost.duration_on(A100) == pytest.approx(2e12 / A100.mem_bandwidth)

    def test_gemm_uses_matrix_peak(self):
        c = gemm_cost(1024, 1024, 1024, efficiency=1.0)
        assert c.use_gemm_peak
        assert c.flops == 2.0 * 1024**3

    def test_stencil_cost_scales_with_points(self):
        small = stencil_cost(1000)
        large = stencil_cost(100000)
        assert large.duration_on(A100) == pytest.approx(
            100 * small.duration_on(A100)
        )

    def test_invalid_efficiency_rejected(self):
        with pytest.raises(DeviceError):
            KernelCost(flops=1, bytes_moved=1, efficiency=0.0)


class TestDeviceFacade:
    def test_launch_advances_clock_and_runs_host_fn(self):
        sim, dev = make_device()
        out = {}

        def host_fn(x):
            out["value"] = x * 2

        k = Kernel(
            name="double",
            cost=lambda x: KernelCost(flops=1e9, bytes_moved=0.0),
            host_fn=host_fn,
        )

        def prog():
            fut = dev.launch(k, 21)
            fut.wait()

        sim.spawn(prog)
        sim.run()
        assert out["value"] == 42
        assert sim.now > A100.kernel_launch_overhead
        assert dev.kernels_launched == 1

    def test_local_copy_moves_data_at_completion(self):
        sim, dev = make_device()
        a = dev.malloc(64)
        b = dev.malloc(64)
        a.write(0, bytes(range(64)))

        def prog():
            dev.local_copy(b, 0, a, 0, 64).wait()

        sim.spawn(prog)
        sim.run()
        assert b.read(0, 64) == bytes(range(64))

    def test_kernel_on_real_buffers_computes(self):
        sim, dev = make_device()
        buf = dev.malloc(8 * 16)
        arr = buf.as_array(np.float64, count=16)
        arr[:] = 1.0

        def scale(view):
            view *= 3.0

        k = Kernel("scale", cost=lambda v: KernelCost(v.size * 1.0, v.nbytes), host_fn=scale)

        def prog():
            dev.launch(k, arr).wait()

        sim.spawn(prog)
        sim.run()
        np.testing.assert_allclose(buf.as_array(np.float64, count=16), 3.0)


class TestIpc:
    def test_open_gives_same_buffer(self):
        sim, dev = make_device()
        buf = dev.malloc(128)
        h = IpcHandle(buf, exporter_rank=0)
        opened, first = h.open(1)
        assert opened is buf and first

    def test_second_open_is_cached(self):
        sim, dev = make_device()
        h = IpcHandle(dev.malloc(128), exporter_rank=0)
        _, first1 = h.open(1)
        _, first2 = h.open(1)
        assert first1 and not first2
        assert h.open_count == 1

    def test_open_in_exporter_rejected(self):
        sim, dev = make_device()
        h = IpcHandle(dev.malloc(128), exporter_rank=0)
        with pytest.raises(DeviceError, match="exporting rank"):
            h.open(0)

    def test_close_unopened_rejected(self):
        sim, dev = make_device()
        h = IpcHandle(dev.malloc(128), exporter_rank=0)
        with pytest.raises(DeviceError, match="never opened"):
            h.close(3)

    def test_export_freed_buffer_rejected(self):
        sim, dev = make_device()
        buf = dev.malloc(128)
        dev.free(buf)
        with pytest.raises(DeviceError):
            IpcHandle(buf, exporter_rank=0)


class TestPeerAccess:
    def test_nvlink_pair_is_peer_capable(self):
        topo = platform_a(with_quirk=False).cluster(2)
        mgr = PeerAccessManager(topo)
        assert mgr.can_access_peer(topo.gpu(0, 0), topo.gpu(0, 1))

    def test_cross_node_not_peer_capable(self):
        topo = platform_a(with_quirk=False).cluster(2)
        mgr = PeerAccessManager(topo)
        assert not mgr.can_access_peer(topo.gpu(0, 0), topo.gpu(1, 0))

    def test_enable_twice_rejected(self):
        topo = platform_a(with_quirk=False).cluster(1)
        mgr = PeerAccessManager(topo)
        mgr.enable_peer_access(topo.gpu(0, 0), topo.gpu(0, 1))
        with pytest.raises(DeviceError, match="already enabled"):
            mgr.enable_peer_access(topo.gpu(0, 0), topo.gpu(0, 1))

    def test_enable_is_directional(self):
        topo = platform_a(with_quirk=False).cluster(1)
        mgr = PeerAccessManager(topo)
        mgr.enable_peer_access(topo.gpu(0, 0), topo.gpu(0, 1))
        assert mgr.is_enabled(topo.gpu(0, 0), topo.gpu(0, 1))
        assert not mgr.is_enabled(topo.gpu(0, 1), topo.gpu(0, 0))

    def test_ensure_enabled_idempotent(self):
        topo = platform_a(with_quirk=False).cluster(1)
        mgr = PeerAccessManager(topo)
        assert mgr.ensure_enabled(topo.gpu(0, 0), topo.gpu(0, 1))
        assert not mgr.ensure_enabled(topo.gpu(0, 0), topo.gpu(0, 1))

    def test_mi250x_gcds_peer_capable(self):
        topo = platform_b().cluster(1)
        mgr = PeerAccessManager(topo)
        assert mgr.can_access_peer(topo.gpu(0, 0), topo.gpu(0, 1))
        assert mgr.can_access_peer(topo.gpu(0, 0), topo.gpu(0, 7))
