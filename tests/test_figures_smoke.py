"""Smoke tests: the lightweight figure entry points produce printable,
shape-correct data (the heavy sweeps live under benchmarks/)."""


from repro.bench import figures


class TestLightFigures:
    def test_fig5_runs_and_prints(self, capsys):
        data = figures.fig5(fast=True)
        figures.print_fig5(data)
        out = capsys.readouterr().out
        assert "Fig. 5" in out
        assert set(data) == {"gasnet_put", "gasnet_get", "gpi2_put", "gpi2_get"}

    def test_listings_runs_and_prints(self, capsys):
        data = figures.listings()
        figures.print_listings(data)
        out = capsys.readouterr().out
        assert "Listings" in out
        assert data["diomp"].sloc < data["mpi"].sloc

    def test_fig1_runs_and_prints(self, capsys):
        data = figures.fig1(n_buffers=4)
        figures.print_fig1(data)
        assert "Fig. 1" in capsys.readouterr().out
        assert data["diomp"].registrations == 1

    def test_cli_module_runs_one_figure(self, capsys):
        from repro.bench.__main__ import main

        assert main(["listings"]) == 0
        out = capsys.readouterr().out
        assert "regenerated" in out
