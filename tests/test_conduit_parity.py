"""Conduit interface parity: the DiOMP runtime must be able to swap
GASNet-EX and GPI-2 freely, so both clients expose the same surface
and equivalent semantics."""

import numpy as np
import pytest

from repro.cluster import MemRef, World, run_spmd
from repro.core import DiompParams, DiompRuntime
from repro.gasnet import GasnetConduit
from repro.gpi2 import Gpi2Conduit
from repro.hardware import platform_c
from repro.util.units import KiB

INTERFACE = [
    "attach_segment",
    "attach_space_segment",
    "put_nb",
    "get_nb",
    "sync_all",
    "pending_count",
    "poll",
    "register_handler",
    "am_request",
]


class TestInterfaceParity:
    @pytest.mark.parametrize("attr", INTERFACE)
    def test_both_clients_expose(self, attr):
        w = World(platform_c(), num_nodes=2)
        for conduit in (GasnetConduit(w), Gpi2Conduit(w)):
            assert hasattr(conduit.client(0), attr), (type(conduit), attr)

    @pytest.mark.parametrize("conduit_cls", [GasnetConduit, Gpi2Conduit])
    def test_put_get_roundtrip_identical_semantics(self, conduit_cls):
        w = World(platform_c(), num_nodes=2)
        conduit = conduit_cls(w)
        bufs = []
        for ctx in w.ranks:
            b = ctx.device.malloc(1 * KiB)
            conduit.client(ctx.rank).attach_segment(MemRef.device(b))
            bufs.append(b)
        out = {}

        def prog(ctx):
            client = conduit.client(ctx.rank)
            if ctx.rank == 0:
                local = ctx.device.malloc(1 * KiB)
                local.as_array(np.uint8)[:] = 42
                client.put_nb(1, bufs[1].address, MemRef.device(local)).wait()
                back = ctx.device.malloc(1 * KiB)
                client.get_nb(1, bufs[1].address, MemRef.device(back)).wait()
                out["roundtrip"] = int(back.as_array(np.uint8)[0])
            ctx.world.global_barrier.wait()

        run_spmd(w, prog)
        assert out["roundtrip"] == 42

    @pytest.mark.parametrize("conduit_cls", [GasnetConduit, Gpi2Conduit])
    def test_am_request_reply_parity(self, conduit_cls):
        w = World(platform_c(), num_nodes=2)
        conduit = conduit_cls(w)
        out = {}

        def prog(ctx):
            client = conduit.client(ctx.rank)
            client.register_handler("negate", lambda src, x: -x)
            ctx.world.global_barrier.wait()
            if ctx.rank == 0:
                out["reply"] = client.am_request(1, "negate", 17).wait()
            ctx.world.global_barrier.wait()

        run_spmd(w, prog)
        assert out["reply"] == -17

    def test_runtime_behaviour_equivalent_across_conduits(self):
        """The same DiOMP program produces identical data and close
        timing on either conduit."""
        results = {}
        for conduit in ("gasnet", "gpi2"):
            w = World(platform_c(), num_nodes=4)
            DiompRuntime(w, DiompParams(conduit=conduit))
            final = {}

            def prog(ctx):
                g = ctx.diomp.alloc(4 * KiB)
                g.typed(np.int32)[:] = ctx.rank
                ctx.diomp.barrier()
                ctx.diomp.put(
                    (ctx.rank + 1) % ctx.nranks, g, g.memref(), target_offset=0
                )
                ctx.diomp.fence()
                ctx.diomp.barrier()
                final[ctx.rank] = g.typed(np.int32)[0]
                return ctx.sim.now

            res = run_spmd(w, prog)
            results[conduit] = (dict(final), max(res.results))
        gas_data, gas_t = results["gasnet"]
        gpi_data, gpi_t = results["gpi2"]
        assert gas_data == gpi_data  # identical data movement
        assert gas_t == pytest.approx(gpi_t, rel=0.25)  # similar timing

    @pytest.mark.parametrize("conduit_cls", [GasnetConduit, Gpi2Conduit])
    def test_space_segment_parity(self, conduit_cls):
        w = World(platform_c(), num_nodes=2)
        conduit = conduit_cls(w)
        spaces = {}
        for ctx in w.ranks:
            base = ctx.device.memory.reserve(64 * KiB)
            conduit.client(ctx.rank).attach_space_segment(
                ctx.device.memory, base, 64 * KiB
            )
            spaces[ctx.rank] = (ctx.device.memory, base)
        out = {}

        def prog(ctx):
            if ctx.rank == 1:
                mem, base = spaces[1]
                buf = mem.allocate_at(base + 1024, 256)
                buf.as_array(np.uint8)[:] = 9
                out["addr"] = buf.address
            ctx.world.global_barrier.wait()
            if ctx.rank == 0:
                dst = ctx.device.malloc(256)
                conduit.client(0).get_nb(1, out["addr"], MemRef.device(dst)).wait()
                out["v"] = int(dst.as_array(np.uint8)[0])
            ctx.world.global_barrier.wait()

        run_spmd(w, prog)
        assert out["v"] == 9
