"""Tests for multirail striping, forced-network paths, and duplex
resource modelling."""

import pytest

from repro.cluster import MemRef, World, run_spmd
from repro.gasnet import GasnetConduit
from repro.hardware import platform_a, platform_c
from repro.network import Fabric
from repro.sim import Simulator
from repro.util.units import KiB, MiB


class TestMultirail:
    def test_rails_multiply_bandwidth(self):
        topo = platform_a(with_quirk=False).cluster(2)
        single = topo.path(topo.gpu(0, 0), topo.gpu(1, 0), rails=1)
        quad = topo.path(topo.gpu(0, 0), topo.gpu(1, 0), rails=4)
        assert quad.bandwidth == pytest.approx(4 * single.bandwidth)
        assert len(quad.resources) == 8  # 4 tx + 4 rx

    def test_rails_capped_at_nic_count(self):
        topo = platform_a(with_quirk=False).cluster(2)
        p = topo.path(topo.gpu(0, 0), topo.gpu(1, 0), rails=99)
        assert p.bandwidth == pytest.approx(
            4 * topo.node_spec.nic.bandwidth
        )

    def test_single_nic_platform_unaffected(self):
        topo = platform_c().cluster(2)
        p1 = topo.path(topo.gpu(0, 0), topo.gpu(1, 0), rails=1)
        p4 = topo.path(topo.gpu(0, 0), topo.gpu(1, 0), rails=4)
        assert p1.bandwidth == p4.bandwidth

    def test_intra_node_ignores_rails(self):
        topo = platform_a(with_quirk=False).cluster(1)
        p = topo.path(topo.gpu(0, 0), topo.gpu(0, 1), rails=4)
        assert len(p.resources) == 1  # still the NVLink pair

    def test_conduit_stripes_large_messages_only(self):
        """A large put books several NIC tx rails; a small one only its
        own striped NIC."""
        w = World(platform_a(with_quirk=False), num_nodes=2)
        conduit = GasnetConduit(w)
        bufs = []
        for ctx in w.ranks:
            b = ctx.device.malloc(8 * MiB, virtual=True)
            conduit.client(ctx.rank).attach_segment(MemRef.device(b))
            bufs.append(b)

        def prog(ctx):
            if ctx.rank == 0:
                small = MemRef.device(ctx.device.malloc(4 * KiB, virtual=True))
                conduit.client(0).put_nb(4, bufs[4].address, small).wait()
                assert w.fabric.resource_busy_until("node0/nic1/tx") == 0.0
                big = MemRef.device(ctx.device.malloc(8 * MiB, virtual=True))
                conduit.client(0).put_nb(4, bufs[4].address, big).wait()
                assert w.fabric.resource_busy_until("node0/nic1/tx") > 0.0

        run_spmd(w, prog)


class TestForceNetwork:
    def test_forced_path_books_nics(self):
        topo = platform_a(with_quirk=False).cluster(1)
        p = topo.path(topo.gpu(0, 0), topo.gpu(0, 1), force_network=True)
        assert any("nic" in r for r in p.resources)
        assert p.bandwidth == topo.node_spec.nic.bandwidth

    def test_forced_path_slower_than_nvlink(self):
        topo = platform_a(with_quirk=False).cluster(1)
        direct = topo.path(topo.gpu(0, 0), topo.gpu(0, 1))
        forced = topo.path(topo.gpu(0, 0), topo.gpu(0, 1), force_network=True)
        assert forced.transfer_time(16 * MiB) > 3 * direct.transfer_time(16 * MiB)

    def test_conduit_loops_intra_node_through_nic(self):
        """Without DiOMP's hierarchy, conduit traffic between same-node
        GPUs occupies the NICs."""
        w = World(platform_a(with_quirk=False), num_nodes=1)
        conduit = GasnetConduit(w)
        bufs = []
        for ctx in w.ranks:
            b = ctx.device.malloc(1 * MiB, virtual=True)
            conduit.client(ctx.rank).attach_segment(MemRef.device(b))
            bufs.append(b)

        def prog(ctx):
            if ctx.rank == 0:
                src = MemRef.device(ctx.device.malloc(1 * MiB, virtual=True))
                conduit.client(0).put_nb(1, bufs[1].address, src).wait()

        run_spmd(w, prog)
        assert w.fabric.resource_busy_until("node0/nic0/tx") > 0.0

    def test_same_device_never_forced(self):
        topo = platform_a(with_quirk=False).cluster(1)
        p = topo.path(topo.gpu(0, 0), topo.gpu(0, 0), force_network=True)
        assert p.resources == ()


class TestDuplexResources:
    def test_opposite_directions_do_not_contend(self):
        """A put 0->1 and a put 1->0 use tx/rx of different NICs and
        overlap fully."""
        sim = Simulator()
        topo = platform_c().cluster(2)
        fab = Fabric(sim, topo)
        size = 16 * MiB
        single = fab.unloaded_time(topo.gpu(0, 0), topo.gpu(1, 0), size)

        def prog():
            f1 = fab.transfer(topo.gpu(0, 0), topo.gpu(1, 0), size)
            f2 = fab.transfer(topo.gpu(1, 0), topo.gpu(0, 0), size)
            f1.wait()
            f2.wait()

        sim.spawn(prog)
        sim.run()
        assert sim.now == pytest.approx(single)

    def test_same_direction_serializes_on_tx(self):
        sim = Simulator()
        topo = platform_c().cluster(3)
        fab = Fabric(sim, topo)
        size = 16 * MiB
        wire = size / topo.path(topo.gpu(0, 0), topo.gpu(1, 0)).bandwidth

        def prog():
            f1 = fab.transfer(topo.gpu(0, 0), topo.gpu(1, 0), size)
            f2 = fab.transfer(topo.gpu(0, 0), topo.gpu(2, 0), size)
            f1.wait()
            f2.wait()

        sim.spawn(prog)
        sim.run()
        # Second transfer waits for the first on node0's tx.
        assert sim.now >= 2 * wire

    def test_decoupled_resources_no_cascade(self):
        """Neighbour exchange pattern: every rank sends left+right; the
        schedule must finish in ~2 wire times, not 3 (no booking
        cascade)."""
        sim = Simulator()
        topo = platform_c().cluster(4)
        fab = Fabric(sim, topo)
        size = 16 * MiB
        wire = size / topo.path(topo.gpu(0, 0), topo.gpu(1, 0)).bandwidth

        def prog():
            futs = []
            for n in range(4):
                for peer in ((n - 1) % 4, (n + 1) % 4):
                    futs.append(
                        fab.transfer(topo.gpu(n, 0), topo.gpu(peer, 0), size)
                    )
            for f in futs:
                f.wait()

        sim.spawn(prog)
        sim.run()
        assert sim.now < 2.2 * wire
