"""Tests for the Minimod proxy application."""

import numpy as np
import pytest

from repro.apps import MinimodConfig, minimod_reference, run_minimod
from repro.cluster import World
from repro.hardware import platform_a, platform_c
from repro.util.errors import ConfigurationError


def assemble_u(results):
    ordered = sorted(results, key=lambda r: r["rank"])
    return np.concatenate([r["u"] for r in ordered])


class TestReference:
    def test_wave_spreads_from_source(self):
        cfg = MinimodConfig(nx=16, ny=12, nz=12, steps=3)
        u = minimod_reference(cfg)
        assert u.shape == (16, 12, 12)
        # Energy must have spread beyond the source cell.
        assert np.count_nonzero(u) > 1
        assert np.isfinite(u).all()

    def test_zero_steps_is_initial_field(self):
        cfg = MinimodConfig(nx=8, ny=8, nz=8, steps=0)
        u = minimod_reference(cfg)
        assert u[4, 4, 4] == 1.0
        assert np.count_nonzero(u) == 1


class TestCorrectness:
    @pytest.mark.parametrize("impl", ["diomp", "mpi"])
    def test_matches_reference_4_ranks(self, impl):
        cfg = MinimodConfig(nx=32, ny=10, nz=10, steps=4)
        w = World(platform_a(with_quirk=False), num_nodes=1)
        res = run_minimod(w, cfg, impl=impl)
        np.testing.assert_allclose(
            assemble_u(res.results), minimod_reference(cfg), rtol=1e-5, atol=1e-7
        )

    @pytest.mark.parametrize("impl", ["diomp", "mpi"])
    def test_matches_reference_multi_node(self, impl):
        cfg = MinimodConfig(nx=48, ny=8, nz=8, steps=5)
        w = World(platform_a(with_quirk=False), num_nodes=2)
        res = run_minimod(w, cfg, impl=impl)
        np.testing.assert_allclose(
            assemble_u(res.results), minimod_reference(cfg), rtol=1e-5, atol=1e-7
        )

    def test_single_rank_matches_reference(self):
        cfg = MinimodConfig(nx=16, ny=8, nz=8, steps=4)
        w = World(platform_c(), num_nodes=1)  # one GPU total
        res = run_minimod(w, cfg, impl="diomp")
        np.testing.assert_allclose(
            assemble_u(res.results), minimod_reference(cfg), rtol=1e-5, atol=1e-7
        )

    def test_slab_thinner_than_radius_rejected(self):
        cfg = MinimodConfig(nx=8, ny=8, nz=8, steps=1)  # lnx=2 < radius
        w = World(platform_a(with_quirk=False), num_nodes=1)
        with pytest.raises(ConfigurationError, match="radius"):
            run_minimod(w, cfg)


class TestTiming:
    def _elapsed(self, impl, nodes, nx=240):
        cfg = MinimodConfig(nx=nx, ny=240, nz=240, steps=5, execute=False)
        w = World(platform_a(with_quirk=False), num_nodes=nodes)
        res = run_minimod(w, cfg, impl=impl)
        return max(r["elapsed"] for r in res.results)

    def test_diomp_beats_mpi_single_node(self):
        """§4.5: 'DiOMP demonstrates superior performance over MPI in
        single-node, multi-device environments' (IPC vs host staging)."""
        assert self._elapsed("diomp", 1) < self._elapsed("mpi", 1)

    def test_diomp_not_slower_multi_node(self):
        assert self._elapsed("diomp", 2) <= self._elapsed("mpi", 2) * 1.01

    def test_scaling_reduces_time(self):
        """A compute-heavy slab (nx=1200) scales; the tiny default grid
        would be synchronization-bound."""
        assert self._elapsed("diomp", 2, nx=1200) < self._elapsed(
            "diomp", 1, nx=1200
        )
