"""Tests for span profiling, Chrome-trace/JSONL export, and the
dashboard."""

import json

from repro.bench.profile import ProfileConfig, run_profiled_cannon, write_profile
from repro.obs import Observability
from repro.obs.export import (
    chrome_trace,
    chrome_trace_events,
    events_jsonl,
    render_dashboard,
    write_metrics_snapshot,
)
from repro.sim.trace import Tracer


def make_obs(times):
    """An Observability whose clock pops pre-baked timestamps."""
    it = iter(times)
    obs = Observability()
    obs.bind_clock(lambda: next(it))
    return obs


class TestSpans:
    def test_nesting_depth_and_duration(self):
        obs = make_obs([0.0, 1.0, 2.0, 5.0])
        with obs.span("outer", rank=0):
            with obs.span("inner", rank=0):
                pass
        inner, outer = obs.spans
        assert (inner.name, inner.depth) == ("inner", 1)
        assert (outer.name, outer.depth) == ("outer", 0)
        assert inner.duration == 1.0
        assert outer.duration == 5.0
        assert outer.category == "outer"

    def test_track_defaults(self):
        obs = make_obs([0.0, 1.0, 2.0, 3.0, 4.0, 5.0])
        with obs.span("a", rank=3):
            pass
        with obs.span("b"):
            pass
        with obs.span("c", track="custom"):
            pass
        assert [s.track for s in obs.spans] == ["rank3", "main", "custom"]

    def test_disabled_profiler_records_nothing(self):
        obs = Observability(enabled=False)
        with obs.span("x", rank=0):
            pass
        assert len(obs.spans) == 0

    def test_profiler_queries(self):
        obs = make_obs([0.0, 1.0, 1.0, 4.0])
        with obs.span("rma.put", rank=0):
            pass
        with obs.span("rma.put", rank=1):
            pass
        prof = obs.profiler
        assert prof.count("rma.put") == 2
        assert prof.total_time("rma.put") == 4.0
        assert len(prof.select(track="rank1")) == 1


class TestChromeTrace:
    def test_event_schema(self):
        obs = make_obs([0.0, 1e-6])
        with obs.span("rma.put", rank=0, target=1):
            pass
        tracer = Tracer(clock=lambda: 2e-6)
        tracer.emit("streams", "create", device="gpu0")
        doc = chrome_trace(obs.spans, tracer, metadata={"run": "test"})
        assert doc["displayTimeUnit"] == "ms"
        assert doc["otherData"] == {"run": "test"}
        events = doc["traceEvents"]
        by_ph = {}
        for e in events:
            by_ph.setdefault(e["ph"], []).append(e)
        # track-name metadata for rank0 and the tracer's events track
        names = [e["args"]["name"] for e in by_ph["M"]]
        assert names == ["rank0", "events"]
        (span_ev,) = by_ph["X"]
        assert span_ev["name"] == "rma.put"
        assert span_ev["ts"] == 0.0
        assert span_ev["dur"] == 1.0  # microseconds
        assert span_ev["args"] == {"rank": "0", "target": "1"}
        (inst,) = by_ph["i"]
        assert inst["name"] == "streams.create"
        assert inst["s"] == "t"
        # everything must be JSON-serializable
        json.dumps(doc)

    def test_rank_tracks_sorted_numerically(self):
        obs = make_obs([float(i) for i in range(22)])
        for r in (10, 2, 0, 1):
            with obs.span("x", rank=r):
                pass
        events = chrome_trace_events(obs.spans)
        names = [e["args"]["name"] for e in events if e["ph"] == "M"]
        assert names == ["rank0", "rank1", "rank2", "rank10"]

    def test_empty_inputs(self):
        assert chrome_trace_events([], None) == []
        doc = chrome_trace(None, None)
        assert doc["traceEvents"] == []


class TestJsonl:
    def test_tracer_to_jsonl_roundtrip(self):
        tracer = Tracer(clock=lambda: 1.5)
        tracer.emit("rma", "put", nbytes=64)
        tracer.emit("streams", "create")
        lines = tracer.to_jsonl().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first == {
            "time": 1.5,
            "category": "rma",
            "name": "put",
            "payload": {"nbytes": "64"},
        }
        assert events_jsonl(tracer) == tracer.to_jsonl()

    def test_tracer_enable_filters(self):
        tracer = Tracer()
        tracer.enable("keep")
        tracer.emit("keep", "a")
        tracer.emit("drop", "b")
        assert [r.name for r in tracer] == ["a"]
        tracer.enable("also")
        tracer.emit("also", "c")
        assert [r.name for r in tracer] == ["a", "c"]
        tracer.enable_all()
        tracer.emit("drop", "d")
        assert [r.name for r in tracer] == ["a", "c", "d"]


class TestProfileRun:
    def test_profiled_cannon_outputs(self, tmp_path):
        out = tmp_path / "prof.json"
        write_profile(str(out), ProfileConfig(n=64))
        trace = json.loads(out.read_text())
        events = trace["traceEvents"]
        assert any(e["ph"] == "X" for e in events)
        tracks = {e["args"]["name"] for e in events if e["ph"] == "M"}
        assert {"rank0", "rank1", "rank2", "rank3"} <= tracks
        metrics = json.loads((tmp_path / "prof.metrics.json").read_text())
        assert metrics["nranks"] == 4
        families = metrics["metrics"]
        # the acceptance trio: per-path traffic, cache events, pool gauge
        assert "rma.bytes" in families["counters"]
        assert "rma.pointer_cache" in families["counters"]
        assert "streams.active" in families["gauges"]
        paths = {
            s["labels"]["path"]
            for s in families["counters"]["rma.bytes"]["series"]
        }
        assert {"conduit", "ipc"} <= paths

    def test_dashboard_renders(self):
        res = run_profiled_cannon(ProfileConfig(n=64))
        text = render_dashboard(res.world.obs.registry, title="test run")
        assert "RMA traffic by path" in text
        for path in ("conduit", "ipc", "p2p", "local"):
            assert path in text
        assert "Pointer cache" in text
        assert "Stream pools" in text
        assert "Metric catalog" in text

    def test_write_metrics_snapshot(self, tmp_path):
        obs = Observability()
        obs.counter("c").inc(rank=0)
        path = tmp_path / "m.json"
        doc = write_metrics_snapshot(str(path), obs.registry, extra={"k": 1})
        loaded = json.loads(path.read_text())
        assert loaded == doc
        assert loaded["k"] == 1
        assert loaded["metrics"]["counters"]["c"]["series"][0]["value"] == 1


class TestStreamingWriters:
    """S1: file exports stream events instead of buffering the doc."""

    def _populated(self):
        obs = make_obs([0.0, 1e-6, 2e-6, 3e-6])
        with obs.span("a", rank=0):
            pass
        with obs.span("b", rank=1):
            pass
        tracer = Tracer()
        tracer.bind_clock(lambda: 5e-6)
        tracer.emit("cat", "evt", k=1)
        return obs, tracer

    def test_streamed_trace_equals_buffered_doc(self, tmp_path):
        from repro.obs.export import write_chrome_trace

        obs, tracer = self._populated()
        path = tmp_path / "trace.json"
        n = write_chrome_trace(
            str(path), obs.spans, tracer, metadata={"run": "x"}
        )
        streamed = json.loads(path.read_text())
        buffered = chrome_trace(obs.spans, tracer, metadata={"run": "x"})
        assert streamed == buffered
        assert n == len(buffered["traceEvents"])
        assert streamed["otherData"] == {"run": "x"}

    def test_empty_trace_is_valid_json(self, tmp_path):
        from repro.obs.export import write_chrome_trace

        path = tmp_path / "empty.json"
        assert write_chrome_trace(str(path)) == 0
        assert json.loads(path.read_text())["traceEvents"] == []

    def test_iter_events_matches_list(self):
        from repro.obs.export import iter_chrome_trace_events

        obs, tracer = self._populated()
        assert list(iter_chrome_trace_events(obs.spans, tracer)) == (
            chrome_trace_events(obs.spans, tracer)
        )

    def test_write_events_jsonl(self, tmp_path):
        from repro.obs.export import write_events_jsonl

        tracer = Tracer()
        tracer.bind_clock(lambda: 1e-6)
        tracer.emit("cat", "one", a=1)
        tracer.emit("cat", "two", b=2)
        path = tmp_path / "events.jsonl"
        assert write_events_jsonl(str(path), tracer) == 2
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 2
        assert lines == events_jsonl(tracer).splitlines()
        assert json.loads(lines[1])["name"] == "two"


class TestHealthTable:
    """S3: dropped series and per-metric series counts are visible."""

    def test_health_in_dashboard(self):
        obs = Observability()
        obs.counter("a").inc(rank=0)
        obs.counter("a").inc(rank=1)
        text = render_dashboard(obs.registry)
        assert "Telemetry health" in text
        assert "a" in text

    def test_dropped_writes_called_out(self):
        import warnings

        from repro.obs.export import health_table
        from repro.obs.metrics import MetricsRegistry

        reg = MetricsRegistry(max_series_per_metric=2)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            for r in range(5):
                reg.counter("a").inc(rank=r)
        text = health_table(reg).render()
        assert "dropped 3 write(s)" in text
        assert "yes" in text  # the overflowed column
