"""Tests for cross-rank causal tracing: capture/link/deliver,
rendezvous cross-linking, Perfetto flow events, and the critical-path
analyzer."""

import numpy as np
import pytest

from repro.cluster import World, run_spmd
from repro.core import DiompParams, DiompRuntime
from repro.hardware import platform_a
from repro.obs import Observability, TraceContext
from repro.obs.critical_path import (
    CATEGORY_ORDER,
    categorize,
    critical_path,
)
from repro.obs.export import flow_events


def make_obs(times):
    """An Observability whose clock pops pre-baked timestamps."""
    it = iter(times)
    obs = Observability()
    obs.bind_clock(lambda: next(it))
    return obs


class TestCaptureLink:
    def test_capture_innermost_open_span(self):
        obs = make_obs([0.0, 1.0, 2.0, 3.0])
        assert obs.capture(rank=0) is None
        with obs.span("outer", rank=0):
            outer_ctx = obs.capture(rank=0)
            with obs.span("inner", rank=0):
                inner_ctx = obs.capture(rank=0)
            assert obs.capture(rank=0) == outer_ctx
        assert inner_ctx.span_id != outer_ctx.span_id
        assert inner_ctx.trace_id == obs.profiler.trace_id

    def test_link_into_open_span(self):
        obs = make_obs([0.0, 1.0, 2.0, 3.0])
        with obs.span("send", rank=0):
            sender = obs.capture(rank=0)
        with obs.span("recv", rank=1):
            assert obs.link(sender, rank=1)
        (send_rec, recv_rec) = obs.spans
        assert recv_rec.links == (sender.span_id,)
        assert send_rec.links == ()

    def test_link_without_open_span_returns_false(self):
        obs = make_obs([0.0, 1.0])
        with obs.span("send", rank=0):
            sender = obs.capture(rank=0)
        assert not obs.link(sender, rank=1)

    def test_self_link_and_foreign_trace_dropped(self):
        obs = make_obs([0.0, 1.0])
        with obs.span("s", rank=0):
            mine = obs.capture(rank=0)
            # Self-link: accepted as "a span was open" but not recorded.
            assert obs.link(mine, rank=0)
            assert not obs.link(TraceContext("other-trace", 1), rank=0)
        (rec,) = obs.spans
        assert rec.links == ()

    def test_link_span_targets_specific_open_span(self):
        obs = make_obs([0.0, 1.0, 2.0, 3.0, 4.0, 5.0])
        with obs.span("a", rank=0):
            a_ctx = obs.capture(rank=0)
            with obs.span("b", rank=1):
                b_ctx = obs.capture(rank=1)
                # b links itself into a (not the innermost on rank1).
                assert obs.profiler.link_span(a_ctx, b_ctx, track="rank0")
        a_rec = obs.profiler.select("a")[0]
        assert a_rec.links == (b_ctx.span_id,)
        # a is now closed: further link_span attempts are dropped.
        assert not obs.profiler.link_span(a_ctx, b_ctx, track="rank0")

    def test_record_standalone_span(self):
        obs = make_obs([])
        sender = TraceContext(obs.profiler.trace_id, 7)
        rec = obs.profiler.record(
            "rma.deliver.ipc", 1.5, 1.5, links=(sender,), rank=3
        )
        assert rec.track == "rank3"
        assert rec.start == rec.end == 1.5
        assert rec.links == (7,)


class TestDeliver:
    def test_deliver_links_into_open_receiver(self):
        obs = make_obs([0.0, 1.0, 2.0, 3.0])
        with obs.span("send", rank=0):
            sender = obs.capture(rank=0)
        with obs.span("fence", rank=1):
            got = obs.deliver("conduit.deliver", sender, 1.5, rank=1)
            fence_ctx = obs.capture(rank=1)
        assert got == fence_ctx
        fence_rec = obs.profiler.select("fence")[0]
        assert sender.span_id in fence_rec.links
        # No standalone delivery span was created.
        assert obs.profiler.count("conduit.deliver") == 0

    def test_deliver_records_standalone_when_no_span_open(self):
        obs = make_obs([0.0, 1.0])
        with obs.span("send", rank=0):
            sender = obs.capture(rank=0)
        got = obs.deliver("conduit.deliver", sender, 2.5, rank=1)
        (rec,) = obs.profiler.select("conduit.deliver")
        assert got == TraceContext(obs.profiler.trace_id, rec.span_id)
        assert rec.start == rec.end == 2.5
        assert rec.links == (sender.span_id,)

    def test_deliver_chains_multi_hop(self):
        obs = make_obs([0.0, 1.0])
        with obs.span("am.request", rank=0):
            sender = obs.capture(rank=0)
        handler = obs.deliver("am.deliver", sender, 2.0, rank=1)
        reply = obs.deliver("am.reply", handler, 3.0, rank=0)
        assert reply is not None
        deliver_rec = obs.profiler.select("am.deliver")[0]
        reply_rec = obs.profiler.select("am.reply")[0]
        assert deliver_rec.links == (sender.span_id,)
        assert reply_rec.links == (deliver_rec.span_id,)

    def test_deliver_none_ctx_or_disabled(self):
        obs = make_obs([0.0])
        assert obs.deliver("x", None, 1.0, rank=0) is None
        off = Observability(enabled=False)
        assert off.deliver("x", TraceContext("trace0", 1), 1.0, rank=0) is None


class TestRendezvous:
    def test_bidirectional_links_between_arrivals(self):
        obs = make_obs([0.0, 1.0, 2.0, 3.0])
        with obs.span("barrier", rank=0):
            obs.rendezvous("barrier", "g0", 0)
            with obs.span("barrier", rank=1):
                obs.rendezvous("barrier", "g0", 1)
        r0 = obs.profiler.select("barrier", track="rank0")[0]
        r1 = obs.profiler.select("barrier", track="rank1")[0]
        # The later arrival (rank1) linked the earlier one into itself
        # and itself into the earlier's still-open span.
        assert r0.links == (r1.span_id,)
        assert r1.links == (r0.span_id,)

    def test_sequence_numbers_pair_nth_barriers(self):
        obs = make_obs([float(i) for i in range(8)])
        for _ in range(2):
            with obs.span("barrier", rank=0):
                obs.rendezvous("barrier", "g0", 0)
                with obs.span("barrier", rank=1):
                    obs.rendezvous("barrier", "g0", 1)
        first0, second0 = obs.profiler.select("barrier", track="rank0")
        first1, second1 = obs.profiler.select("barrier", track="rank1")
        assert first0.links == (first1.span_id,)
        assert second0.links == (second1.span_id,)
        assert second1.links == (second0.span_id,)

    def test_no_open_span_is_a_no_op(self):
        obs = make_obs([])
        obs.rendezvous("barrier", "g0", 0)
        assert len(obs.spans) == 0


class TestFlowEvents:
    def chain(self):
        """A -> B -> C across three tracks; B is an interior node."""
        obs = make_obs([])
        prof = obs.profiler
        a = prof.record("A", 0.0, 1e-6, track="rank0")
        b = prof.record(
            "B", 1.5e-6, 2e-6, track="rank1",
            links=(TraceContext(prof.trace_id, a.span_id),),
        )
        prof.record(
            "C", 2.5e-6, 3e-6, track="rank2",
            links=(TraceContext(prof.trace_id, b.span_id),),
        )
        return obs.spans

    def test_chain_emits_start_step_finish(self):
        events = flow_events(self.chain())
        assert [e["ph"] for e in events] == ["s", "t", "f"]
        s, t, f = events
        assert s["id"] == t["id"] == f["id"] == 1
        assert s["name"] == t["name"] == f["name"] == "A"
        assert s["ts"] == pytest.approx(1.0)  # microseconds: A ends
        assert t["ts"] == pytest.approx(1.5)  # lands at B's start
        assert f["ts"] == pytest.approx(2.5)  # lands at C's start
        assert f["bp"] == "e"
        assert (s["tid"], t["tid"], f["tid"]) == (0, 1, 2)

    def test_fan_out_makes_two_flows(self):
        obs = make_obs([])
        prof = obs.profiler
        a = prof.record("A", 0.0, 1.0, track="rank0")
        ctx = TraceContext(prof.trace_id, a.span_id)
        prof.record("B", 2.0, 3.0, track="rank1", links=(ctx,))
        prof.record("C", 2.0, 3.0, track="rank2", links=(ctx,))
        events = flow_events(obs.spans)
        assert sorted(e["ph"] for e in events) == ["f", "f", "s", "s"]
        assert len({e["id"] for e in events}) == 2

    def test_unlinked_spans_make_no_flows(self):
        obs = make_obs([0.0, 1.0])
        with obs.span("x", rank=0):
            pass
        assert flow_events(obs.spans) == []

    def test_flows_included_in_chrome_trace(self):
        from repro.obs.export import chrome_trace_events

        events = chrome_trace_events(self.chain())
        phs = {e["ph"] for e in events}
        assert {"M", "X", "s", "t", "f"} <= phs


class TestCategorize:
    def test_longest_dotted_prefix(self):
        assert categorize("conduit.deliver") == "network"
        assert categorize("rma.put") == "network"
        assert categorize("rma.put.batch") == "network"
        assert categorize("rma.fence") == "wait"
        assert categorize("barrier") == "wait"
        assert categorize("ompccl.allreduce") == "device"
        assert categorize("stream.complete") == "device"
        assert categorize("compute") == "host"
        assert categorize("profile.asym_ping") == "host"


class TestCriticalPath:
    def ping_pong_spans(self):
        """Hand-checkable: rank0 puts [0,1]; rank1 fences [0,2] waiting
        on the delivery; rank1 computes [2,4]."""
        obs = make_obs([])
        prof = obs.profiler
        put = prof.record("rma.put", 0.0, 1.0, track="rank0")
        prof.record(
            "rma.fence", 0.0, 2.0, track="rank1",
            links=(TraceContext(prof.trace_id, put.span_id),),
        )
        prof.record("compute", 2.0, 4.0, track="rank1")
        return obs.spans

    def test_hand_checked_breakdown(self):
        summary = critical_path(self.ping_pong_spans())
        assert summary.total == 4.0
        assert summary.breakdown == {
            "network": 1.0,  # rma.put on rank0
            "wait": 1.0,     # tail of the fence after the put landed
            "host": 2.0,     # compute on rank1
        }
        names = [(s.name, s.start, s.end) for s in summary.segments]
        assert names == [
            ("rma.put", 0.0, 1.0),
            ("rma.fence", 1.0, 2.0),
            ("compute", 2.0, 4.0),
        ]

    def test_breakdown_sums_to_total(self):
        summary = critical_path(self.ping_pong_spans())
        assert sum(summary.breakdown.values()) == pytest.approx(
            summary.total, abs=1e-15
        )
        # Segments tile [0, total] with no gaps or overlaps.
        edges = [summary.segments[0].start]
        for seg in summary.segments:
            assert seg.start == edges[-1]
            edges.append(seg.end)
        assert edges[0] == 0.0 and edges[-1] == summary.total

    def test_track_stats_and_imbalance(self):
        summary = critical_path(self.ping_pong_spans())
        by_track = {t.track: t for t in summary.tracks}
        assert by_track["rank0"].busy == 1.0
        assert by_track["rank0"].wait == 3.0
        assert by_track["rank1"].busy == 4.0
        assert by_track["rank1"].wait == 0.0
        # max busy / mean busy = 4.0 / 2.5
        assert summary.imbalance == pytest.approx(1.6)

    def test_leading_idle_charged_as_wait(self):
        obs = make_obs([])
        obs.profiler.record("compute", 2.0, 5.0, track="rank0")
        summary = critical_path(obs.spans)
        assert summary.total == 5.0
        assert summary.breakdown == {"wait": 2.0, "host": 3.0}
        assert summary.segments[0].name == "(idle)"

    def test_empty_input(self):
        summary = critical_path([])
        assert summary.total == 0.0
        assert summary.segments == []
        assert summary.breakdown == {}

    def test_to_dict_shape(self):
        d = critical_path(self.ping_pong_spans()).to_dict()
        assert set(d["breakdown"]) == set(CATEGORY_ORDER)
        assert d["total"] == 4.0
        assert d["segments"] == 3
        assert d["tracks"][0]["track"] == "rank0"

    def test_render_tables(self):
        text = critical_path(self.ping_pong_spans()).render()
        assert "Critical path breakdown" in text
        assert "Per-track wait states" in text
        assert "Hottest path spans" in text
        assert "imbalance" in text


class TestEndToEnd:
    def test_two_rank_ping_pong(self):
        w = World(platform_a(with_quirk=False), num_nodes=2, ranks_per_node=1)
        DiompRuntime(w, DiompParams(segment_size=1 << 20))

        def prog(ctx):
            d = ctx.diomp
            buf = d.alloc(256)
            buf.typed(np.float64)[:] = float(ctx.rank)
            d.barrier()
            if ctx.rank == 0:
                d.put(1, buf, buf.memref())
                d.fence()
            d.barrier()

        res = run_spmd(w, prog)
        spans = w.obs.spans
        linked = [s for s in spans if s.links]
        assert linked, "expected causal links from barrier/put deliveries"
        # Barrier rendezvous links are bidirectional across the 2 ranks.
        barriers = [s for s in spans if s.name == "barrier" and s.links]
        assert barriers
        flows = flow_events(spans)
        starts = [e for e in flows if e["ph"] == "s"]
        finishes = [e for e in flows if e["ph"] == "f"]
        assert len(starts) == len(finishes) > 0
        summary = res.critical_path
        assert summary.total == pytest.approx(res.elapsed, rel=1e-9)
        assert sum(summary.breakdown.values()) == pytest.approx(
            summary.total, rel=1e-12
        )
        tracks = {t.track for t in summary.tracks}
        assert {"rank0", "rank1"} <= tracks

    def test_profiled_cannon_path_matches_elapsed(self):
        from repro.bench.profile import ProfileConfig, run_profiled_cannon

        res = run_profiled_cannon(ProfileConfig(n=64))
        summary = res.critical_path
        assert summary.total == pytest.approx(res.elapsed, rel=1e-9)
        assert sum(summary.breakdown.values()) == pytest.approx(
            summary.total, rel=1e-12
        )
        # The 4-rank cannon crosses both the conduit and IPC paths, so
        # network time must appear on the critical path.
        assert summary.breakdown.get("network", 0.0) > 0.0
        flows = flow_events(res.world.obs.spans)
        assert any(e["ph"] == "s" for e in flows)

    def test_per_track_nesting_interleaves_cleanly(self):
        # Two ranks' spans interleave in wall-clock order, yet each
        # rank's depth counts only its own open spans.
        obs = make_obs([0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0])
        with obs.span("a0", rank=0):
            with obs.span("b1", rank=1):
                with obs.span("c0", rank=0):
                    pass
                with obs.span("d1", rank=1):
                    pass
        depths = {r.name: r.depth for r in obs.spans}
        assert depths == {"a0": 0, "b1": 0, "c0": 1, "d1": 1}
        parents = {r.name: r.parent_id for r in obs.spans}
        ids = {r.name: r.span_id for r in obs.spans}
        assert parents["c0"] == ids["a0"]
        assert parents["d1"] == ids["b1"]
