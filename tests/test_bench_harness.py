"""Tests for the benchmark harness itself (report, micro, app, fig glue)."""

import math

import pytest

from repro.bench import appbench, collective, microbench, programmability, registration
from repro.bench.report import Series, Table, fmt_gbs, fmt_ratio, fmt_speedup, fmt_us, series_table
from repro.hardware import get_platform, platform_a, platform_c
from repro.util.errors import ConfigurationError
from repro.util.units import KiB


class TestReport:
    def test_table_renders_aligned(self):
        t = Table("Title", ["a", "bb"])
        t.add_row(1, "x")
        t.add_row(22, "yy")
        text = t.render()
        assert "Title" in text
        lines = text.splitlines()
        assert len({len(line) for line in lines[2:]}) == 1  # aligned widths

    def test_table_row_arity_checked(self):
        t = Table("T", ["a", "b"])
        with pytest.raises(ValueError, match="cells"):
            t.add_row(1)

    def test_series_length_checked(self):
        with pytest.raises(ValueError, match="mismatch"):
            Series("s", [1, 2], [1.0])

    def test_series_table_requires_shared_axis(self):
        s1 = Series("a", [1, 2], [0.1, 0.2])
        s2 = Series("b", [1, 3], [0.1, 0.2])
        with pytest.raises(ValueError, match="different x"):
            series_table("t", "x", str, [s1, s2])

    def test_formatters(self):
        assert fmt_us(2.5e-6) == "2.50"
        assert fmt_gbs(25e9) == "25.00"
        assert fmt_ratio(0.5) == "+0.500"
        assert fmt_ratio(-0.25) == "-0.250"
        assert fmt_speedup(2.0) == "2.00x"


class TestMicrobench:
    def test_latency_monotone_in_size(self):
        pts = microbench.diomp_p2p(
            platform_a(with_quirk=False), "put", [64, 8 * KiB], reps=2
        )
        assert pts[0][1] < pts[1][1]

    def test_mpi_latency_above_diomp(self):
        sizes = [256]
        d = microbench.diomp_p2p(platform_a(with_quirk=False), "put", sizes, reps=2)
        m = microbench.mpi_p2p(platform_a(with_quirk=False), "put", sizes, reps=2)
        assert d[0][1] < m[0][1]

    def test_bad_op_rejected(self):
        with pytest.raises(ConfigurationError):
            microbench.diomp_p2p(platform_a(), "send", [64])
        with pytest.raises(ConfigurationError):
            microbench.mpi_p2p(platform_a(), "send", [64])

    def test_conduit_sweep_requires_infiniband(self):
        with pytest.raises(ConfigurationError, match="InfiniBand"):
            microbench.conduit_bandwidth_sweep(platform_a(), sizes=[64], reps=1)

    def test_bandwidth_sweep_keys(self):
        out = microbench.bandwidth_sweep(
            platform_c(), sizes=[4 * KiB], reps=1, window=2
        )
        assert set(out) == {"diomp_put", "diomp_get", "mpi_put", "mpi_get"}
        for pts in out.values():
            assert pts[0][1] > 0


class TestCollectiveBench:
    def test_ratio_heatmap_single_cell(self):
        grid = collective.ratio_heatmap(
            platforms=("C",), ops=("bcast",), sizes=[128 * KiB], reps=1
        )
        ((letter, op), cells), = grid.items()
        assert letter == "C" and op == "bcast"
        assert math.isfinite(cells[0][1])

    def test_invalid_op_rejected(self):
        with pytest.raises(ConfigurationError):
            collective.diomp_collective_latency(platform_c(), 2, "alltoall", 1024)
        with pytest.raises(ConfigurationError):
            collective.mpi_collective_latency(platform_c(), 2, "alltoall", 1024)


class TestAppBench:
    def test_app_platform_strips_quirk(self):
        assert appbench.app_platform("A").node.nic.quirk is None
        assert get_platform("A").node.nic.quirk is not None

    def test_cannon_speedups_shape(self):
        out = appbench.cannon_speedups("A", nodes_sweep=(1, 2), n=4096)
        assert set(out) == {"diomp", "mpi"}
        for series in out.values():
            assert series[0] == (4, 1.0)  # baseline normalizes to 1

    def test_minimod_speedups_baseline_is_mpi(self):
        # Grid large enough to amortize the one-time IPC-open costs.
        out = appbench.minimod_speedups(
            "A", nodes_sweep=(1, 2), grid=240, steps=5
        )
        assert out["mpi"][0][1] == pytest.approx(1.0)
        assert out["diomp"][0][1] > 1.0  # DiOMP beats MPI on one node

    def test_unknown_platform_sweep_rejected(self):
        with pytest.raises(ConfigurationError):
            appbench.cannon_scaling("C", "diomp")


class TestProgrammability:
    def test_measures_both_variants(self):
        data = programmability.measure_halo_exchange()
        assert data["diomp"].sloc < data["mpi"].sloc
        assert data["diomp"].api_calls < data["mpi"].api_calls

    def test_sloc_ignores_formatting(self):
        assert programmability._sloc("foo(\n  a,\n  b,\n)\nbar()") == 2
        assert programmability._sloc("# comment\n\nx = 1") == 1


class TestRegistration:
    def test_compare_counts(self):
        data = registration.compare(n_buffers=4, size=64 * KiB)
        assert data["baseline"].registrations == 4
        assert data["diomp"].registrations == 1
        assert data["diomp"].setup_time <= data["baseline"].setup_time
