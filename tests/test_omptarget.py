"""Tests for the libomptarget layer: mapping, plugins, target regions."""

import numpy as np
import pytest

from repro.cluster import World, run_spmd
from repro.device.kernel import KernelCost
from repro.hardware import platform_a
from repro.omptarget import (
    Map,
    MappingTable,
    MapType,
    NativePlugin,
    OmpTargetRuntime,
    VirtualArray,
)
from repro.util.errors import AllocationError, ConfigurationError, DeviceError
from repro.util.units import MiB


def world1():
    return World(platform_a(with_quirk=False), num_nodes=1)


SMALL_COST = KernelCost(flops=1e6, bytes_moved=1e3)


class TestMappingTable:
    def test_insert_lookup(self):
        from repro.device import DeviceMemorySpace

        table = MappingTable()
        space = DeviceMemorySpace(1 * MiB)
        arr = np.zeros(10)
        buf = space.allocate(80)
        table.insert(arr, buf)
        assert table.lookup(arr).device_buffer is buf
        assert table.device_ptr(arr) == buf.address

    def test_refcount_semantics(self):
        from repro.device import DeviceMemorySpace

        table = MappingTable()
        space = DeviceMemorySpace(1 * MiB)
        arr = np.zeros(10)
        table.insert(arr, space.allocate(80))
        table.retain(arr)
        assert table.release(arr) is None  # 2 -> 1: still present
        entry = table.release(arr)  # 1 -> 0
        assert entry is not None
        assert table.lookup(arr) is None

    def test_double_insert_rejected(self):
        from repro.device import DeviceMemorySpace

        table = MappingTable()
        space = DeviceMemorySpace(1 * MiB)
        arr = np.zeros(10)
        table.insert(arr, space.allocate(80))
        with pytest.raises(AllocationError, match="already mapped"):
            table.insert(arr, space.allocate(80))

    def test_release_unmapped_rejected(self):
        table = MappingTable()
        with pytest.raises(AllocationError, match="unmapped"):
            table.release(np.zeros(3))

    def test_virtual_array_validation(self):
        with pytest.raises(ConfigurationError):
            VirtualArray(0)


class TestEnterExitData:
    def test_to_copies_in(self):
        w = world1()
        out = {}

        def prog(ctx):
            if ctx.rank != 0:
                return
            rt = OmpTargetRuntime(ctx)
            arr = np.arange(16, dtype=np.float64)
            rt.target_enter_data([Map(arr, MapType.TO)])
            buf = rt.table().lookup(arr).device_buffer
            out["dev"] = buf.as_array(np.float64).copy()
            rt.target_exit_data([Map(arr, MapType.TO)])
            out["live"] = rt.table().live_entries

        run_spmd(w, prog)
        np.testing.assert_array_equal(out["dev"], np.arange(16, dtype=np.float64))
        assert out["live"] == 0

    def test_from_copies_out_on_last_release(self):
        w = world1()
        out = {}

        def prog(ctx):
            if ctx.rank != 0:
                return
            rt = OmpTargetRuntime(ctx)
            arr = np.zeros(8, dtype=np.float64)
            rt.target_enter_data([Map(arr, MapType.ALLOC)])
            rt.target_enter_data([Map(arr, MapType.ALLOC)])  # refcount 2
            buf = rt.table().lookup(arr).device_buffer
            buf.as_array(np.float64)[:] = 5.0
            rt.target_exit_data([Map(arr, MapType.FROM)])  # 2 -> 1: no copy
            out["after_first"] = arr.copy()
            rt.target_exit_data([Map(arr, MapType.FROM)])  # 1 -> 0: copy out
            out["after_second"] = arr.copy()

        run_spmd(w, prog)
        np.testing.assert_array_equal(out["after_first"], 0.0)
        np.testing.assert_array_equal(out["after_second"], 5.0)

    def test_alloc_does_not_transfer(self):
        w = world1()
        out = {}

        def prog(ctx):
            if ctx.rank != 0:
                return
            rt = OmpTargetRuntime(ctx)
            arr = np.ones(8)
            rt.target_enter_data([Map(arr, MapType.ALLOC)])
            out["h2d"] = rt.h2d_transfers
            rt.target_exit_data([Map(arr, MapType.ALLOC)])
            out["d2h"] = rt.d2h_transfers

        run_spmd(w, prog)
        assert out == {"h2d": 0, "d2h": 0}

    def test_remap_reuses_entry(self):
        """Second map of a present object must not allocate again."""
        w = world1()
        out = {}

        def prog(ctx):
            if ctx.rank != 0:
                return
            plugin = NativePlugin()
            rt = OmpTargetRuntime(ctx, plugin=plugin)
            arr = np.zeros(8)
            rt.target_enter_data([Map(arr, MapType.TO)])
            rt.target_enter_data([Map(arr, MapType.TO)])
            out["allocs"] = plugin.allocs
            out["h2d"] = rt.h2d_transfers

        run_spmd(w, prog)
        assert out["allocs"] == 1
        assert out["h2d"] == 1  # presence check suppresses second copy

    def test_update_to_from(self):
        w = world1()
        out = {}

        def prog(ctx):
            if ctx.rank != 0:
                return
            rt = OmpTargetRuntime(ctx)
            arr = np.zeros(4, dtype=np.int64)
            rt.target_enter_data([Map(arr, MapType.TO)])
            buf = rt.table().lookup(arr).device_buffer
            buf.as_array(np.int64)[:] = 11
            rt.target_update_from(arr)
            out["host"] = arr.copy()
            arr[:] = 22
            rt.target_update_to(arr)
            out["dev"] = buf.as_array(np.int64).copy()

        run_spmd(w, prog)
        np.testing.assert_array_equal(out["host"], 11)
        np.testing.assert_array_equal(out["dev"], 22)

    def test_update_unmapped_rejected(self):
        w = world1()

        def prog(ctx):
            if ctx.rank != 0:
                return
            OmpTargetRuntime(ctx).target_update_from(np.zeros(4))

        with pytest.raises(DeviceError, match="unmapped"):
            run_spmd(w, prog)


class TestTargetRegion:
    def test_tofrom_region_computes(self):
        w = world1()
        arr = np.arange(32, dtype=np.float64)

        def prog(ctx):
            if ctx.rank != 0:
                return
            rt = OmpTargetRuntime(ctx)
            rt.target(
                "saxpy",
                SMALL_COST,
                maps=[Map(arr, MapType.TOFROM)],
                body=lambda a: a.__imul__(2.0),
            )

        run_spmd(w, prog)
        np.testing.assert_array_equal(arr, np.arange(32) * 2.0)

    def test_region_elapsed_includes_transfers_and_kernel(self):
        w = world1()

        def prog(ctx):
            if ctx.rank != 0:
                return
            rt = OmpTargetRuntime(ctx)
            arr = VirtualArray(64 * MiB)
            rt.target("big", KernelCost(flops=1e12, bytes_moved=1e9),
                      maps=[Map(arr, MapType.TOFROM)])

        res = run_spmd(w, prog)
        # 2 x 64 MiB over PCIe (~5 ms) + ~0.1 s of compute at ~10 TF
        assert res.elapsed > 0.1

    def test_virtual_map_skips_body(self):
        w = world1()
        called = []

        def prog(ctx):
            if ctx.rank != 0:
                return
            rt = OmpTargetRuntime(ctx)
            rt.target(
                "k",
                SMALL_COST,
                maps=[Map(VirtualArray(1024), MapType.TOFROM)],
                body=lambda a: called.append(1),
            )

        run_spmd(w, prog)
        assert called == []

    def test_multiple_maps_in_order(self):
        w = world1()
        a = np.ones(4)
        b = np.zeros(4)

        def prog(ctx):
            if ctx.rank != 0:
                return
            rt = OmpTargetRuntime(ctx)

            def body(da, db):
                db[:] = da * 7

            rt.target(
                "k",
                SMALL_COST,
                maps=[Map(a, MapType.TO), Map(b, MapType.FROM)],
                body=body,
            )

        run_spmd(w, prog)
        np.testing.assert_array_equal(b, 7.0)

    def test_nowait_region(self):
        w = world1()
        a = np.ones(4)

        def prog(ctx):
            if ctx.rank != 0:
                return
            rt = OmpTargetRuntime(ctx)
            region = rt.target(
                "k",
                KernelCost(flops=1e9, bytes_moved=0),
                maps=[Map(a, MapType.TOFROM)],
                body=lambda d: d.__iadd__(1),
                nowait=True,
            )
            # Host work overlaps the kernel here.
            rt.finish_nowait(region)

        run_spmd(w, prog)
        np.testing.assert_array_equal(a, 2.0)

    def test_bad_device_num_rejected(self):
        w = world1()

        def prog(ctx):
            if ctx.rank != 0:
                return
            OmpTargetRuntime(ctx).device(5)

        with pytest.raises(ConfigurationError, match="out of range"):
            run_spmd(w, prog)


class TestExplicitAlloc:
    def test_omp_target_alloc_free(self):
        w = world1()

        def prog(ctx):
            if ctx.rank != 0:
                return
            rt = OmpTargetRuntime(ctx)
            buf = rt.omp_target_alloc(4096)
            assert buf.size == 4096
            rt.omp_target_free(buf)

        run_spmd(w, prog)

    def test_use_device_ptr(self):
        w = world1()
        out = {}

        def prog(ctx):
            if ctx.rank != 0:
                return
            rt = OmpTargetRuntime(ctx)
            arr = np.zeros(8)
            rt.target_enter_data([Map(arr, MapType.TO)])
            out["ptr"] = rt.use_device_ptr(arr)
            out["buf_addr"] = rt.table().lookup(arr).device_buffer.address

        run_spmd(w, prog)
        assert out["ptr"] == out["buf_addr"]

    def test_multi_device_rank(self):
        """Single-process multi-GPU: maps go to the selected device."""
        w = World(platform_a(with_quirk=False), num_nodes=1, devices_per_rank=4)

        def prog(ctx):
            if ctx.rank != 0:
                return
            rt = OmpTargetRuntime(ctx)
            arrs = [np.full(4, float(d)) for d in range(4)]
            for d in range(4):
                rt.target_enter_data([Map(arrs[d], MapType.TO)], device_num=d)
            for d in range(4):
                buf = rt.table(d).lookup(arrs[d]).device_buffer
                np.testing.assert_array_equal(buf.as_array(np.float64), float(d))
                assert rt.table(d).live_entries == 1

        run_spmd(w, prog)
