"""Plan lowering: hand-written vs plan-lowered apps on all backends.

The strong claims from the tentpole: plan-lowered Cannon and Minimod
are *bit-identical* to the hand-written implementations on GASNet-EX,
GPI-2 and the MPI baseline, and the optimized plan's modelled time
exactly equals the hand-written overlapped loop (the optimizer derives
the same schedule mechanically).
"""

import numpy as np
import pytest

from repro.apps.cannon import CannonConfig, run_cannon
from repro.apps.minimod import MinimodConfig, run_minimod
from repro.cluster import World
from repro.core.runtime import DiompParams, DiompRuntime
from repro.hardware import platform_a, platform_c
from repro.plan import (
    Access,
    BufDecl,
    BufRef,
    CollSpec,
    CommPlan,
    Peer,
    PlanOp,
    cannon_plan,
    lower_plan,
    optimize_plan,
    run_cannon_plan,
    run_minimod_plan,
)
from repro.util.errors import ConfigurationError, PlanVerificationError

CANNON = CannonConfig(n=32, execute=True)
MINIMOD = MinimodConfig(nx=48, ny=8, nz=8, steps=5, execute=True)


def gasnet_world():
    return World(platform_a(with_quirk=False), num_nodes=1)


def ib_world():
    """GPI-2 requires InfiniBand; platform C provides it (2 ranks)."""
    return World(platform_c(), num_nodes=2)


def gpi2_runtime(world, nbytes):
    """A hand-app runtime on the GPI-2 conduit (same sizing rule as
    the hand drivers' default)."""
    return DiompRuntime(
        world, DiompParams(conduit="gpi2", segment_size=6 * nbytes + (1 << 20))
    )


def by_rank(result, key):
    return [r[key] for r in sorted(result.results, key=lambda r: r["rank"])]


def cannon_stripe_bytes(cfg, nranks):
    return cfg.stripe(nranks) * cfg.n * cfg.itemsize


class TestCannonParity:
    def check(self, hand, planned, elapsed_equal=True):
        for c_hand, c_plan in zip(by_rank(hand, "C"), by_rank(planned, "C")):
            assert np.array_equal(c_hand, c_plan)
        if elapsed_equal:
            assert by_rank(hand, "elapsed") == by_rank(planned, "elapsed")

    def test_gasnet(self):
        hand = run_cannon(gasnet_world(), CANNON, impl="diomp")
        planned = run_cannon_plan(gasnet_world(), CANNON, backend="gasnet")
        self.check(hand, planned)

    def test_gasnet_naive_plan_matches_numerically(self):
        hand = run_cannon(gasnet_world(), CANNON, impl="diomp")
        planned = run_cannon_plan(
            gasnet_world(), CANNON, backend="gasnet", optimize=False
        )
        self.check(hand, planned, elapsed_equal=False)

    def test_gpi2(self):
        world = ib_world()
        nb = cannon_stripe_bytes(CANNON, world.nranks)
        hand = run_cannon(world, CANNON, impl="diomp", runtime=gpi2_runtime(world, nb))
        planned = run_cannon_plan(ib_world(), CANNON, backend="gpi2")
        self.check(hand, planned)

    def test_mpi(self):
        hand = run_cannon(gasnet_world(), CANNON, impl="mpi")
        planned = run_cannon_plan(gasnet_world(), CANNON, backend="mpi")
        self.check(hand, planned)


class TestMinimodParity:
    def check(self, hand, planned, elapsed_equal=True):
        for u_hand, u_plan in zip(by_rank(hand, "u"), by_rank(planned, "u")):
            assert np.array_equal(u_hand, u_plan)
        if elapsed_equal:
            assert by_rank(hand, "elapsed") == by_rank(planned, "elapsed")

    def test_gasnet_optimized_equals_hand_overlap(self):
        hand = run_minimod(gasnet_world(), MINIMOD, impl="diomp-overlap")
        planned = run_minimod_plan(gasnet_world(), MINIMOD, backend="gasnet")
        self.check(hand, planned)

    def test_gasnet_naive_plan_matches_hand_naive(self):
        # Leapfrog slab kernels produce the same bits as the in-place
        # stencil, so even naive-vs-naive is bit-identical (elapsed
        # differs: different loop structure).
        hand = run_minimod(gasnet_world(), MINIMOD, impl="diomp")
        planned = run_minimod_plan(
            gasnet_world(), MINIMOD, backend="gasnet", optimize=False
        )
        self.check(hand, planned, elapsed_equal=False)

    def test_gpi2(self):
        from repro.apps.minimod import _field_bytes

        world = ib_world()
        nb = _field_bytes(MINIMOD, MINIMOD.local_nx(world.nranks))
        hand = run_minimod(
            world, MINIMOD, impl="diomp-overlap", runtime=gpi2_runtime(world, nb)
        )
        planned = run_minimod_plan(ib_world(), MINIMOD, backend="gpi2")
        self.check(hand, planned)

    def test_mpi(self):
        hand = run_minimod(gasnet_world(), MINIMOD, impl="mpi")
        planned = run_minimod_plan(gasnet_world(), MINIMOD, backend="mpi")
        self.check(hand, planned, elapsed_equal=False)


class TestLoweringErrors:
    def test_unknown_backend(self):
        with pytest.raises(ConfigurationError, match="unknown lowering backend"):
            lower_plan(cannon_plan(CANNON, 4), "ucx", 4)

    def test_world_size_mismatch(self):
        prog = lower_plan(cannon_plan(CannonConfig(n=32), 8), "gasnet", 8)
        with pytest.raises(ConfigurationError, match="world has 4"):
            prog.run(gasnet_world())

    def test_unsound_plan_refused(self):
        bad = CommPlan(
            name="bad",
            steps=1,
            buffers=(BufDecl("X", 64),),
            body=(
                PlanOp(
                    op_id="p",
                    kind="put",
                    peer=Peer(-1),
                    src=Access(BufRef("GHOST"), 0, 8),
                    dst=Access(BufRef("X"), 0, 8),
                ),
            ),
        )
        with pytest.raises(PlanVerificationError, match="dangling"):
            lower_plan(bad, "gasnet", 4)


class TestMetrics:
    def test_pass_rewrites_and_op_count_exported(self):
        world = gasnet_world()
        run_minimod_plan(world, MINIMOD, backend="gasnet")
        reg = world.obs
        assert reg.value("plan.pass.rewrites", plan="minimod", rewrite="halo_expanded") == 8
        assert reg.value("plan.pass.rewrites", plan="minimod", rewrite="ops_coalesced") == 6
        assert (
            reg.value("plan.pass.rewrites", plan="minimod", rewrite="computes_overlapped")
            == 3
        )
        plan, _ = optimize_plan(minimod_plan_for(world.nranks))
        assert reg.value("plan.ops", plan="minimod", backend="gasnet") == plan.op_count()

    def test_naive_run_exports_no_rewrites(self):
        world = gasnet_world()
        run_cannon_plan(world, CANNON, backend="gasnet", optimize=False)
        assert world.obs.value("plan.ops", plan="cannon", backend="gasnet") == 6.0


def minimod_plan_for(nranks):
    from repro.plan import minimod_plan

    return minimod_plan(MINIMOD, nranks)


class TestSyntheticLowering:
    """Op kinds the apps don't exercise: allreduce, notify, prefetch."""

    def allreduce_plan(self):
        nbytes = 8 * 8

        def init_fn(ctx, bufs):
            bufs.array("S", np.float64)[:] = float(ctx.rank + 1)
            bufs.array("R", np.float64)[:] = 0.0

        def finish_fn(ctx, bufs, elapsed):
            return {
                "rank": ctx.rank,
                "elapsed": elapsed,
                "recv": bufs.array("R", np.float64).copy(),
            }

        return CommPlan(
            name="ar",
            steps=1,
            buffers=(BufDecl("S", nbytes, kind="local"), BufDecl("R", nbytes, kind="local")),
            body=(
                PlanOp(
                    op_id="ar",
                    kind="allreduce",
                    coll=CollSpec(
                        send=Access(BufRef("S"), 0, nbytes),
                        recv=Access(BufRef("R"), 0, nbytes),
                        dtype=np.float64,
                    ),
                ),
                PlanOp(op_id="bar", kind="barrier"),
            ),
            init_fn=init_fn,
            finish_fn=finish_fn,
            meta={"execute": True},
        )

    def test_allreduce_preselected_and_correct(self):
        world = gasnet_world()
        plan, stats = optimize_plan(self.allreduce_plan(), world=world)
        assert stats["collectives_preselected"] == 1
        algo = next(op for op in plan.body if op.kind == "allreduce").algo
        assert algo in ("ring", "tree", "hier_ring")
        result = lower_plan(plan, "gasnet", world.nranks).run(world)
        expected = float(sum(range(1, world.nranks + 1)))
        for recv in by_rank(result, "recv"):
            assert np.array_equal(recv, np.full(8, expected))

    def test_allreduce_mpi(self):
        world = gasnet_world()
        result = lower_plan(self.allreduce_plan(), "mpi", world.nranks).run(world)
        expected = float(sum(range(1, world.nranks + 1)))
        for recv in by_rank(result, "recv"):
            assert np.array_equal(recv, np.full(8, expected))

    def notify_plan(self):
        return CommPlan(
            name="nf",
            steps=1,
            buffers=(),
            body=(
                PlanOp(op_id="n", kind="notify", peer=Peer(+1), token=7),
                PlanOp(op_id="fence", kind="fence", after=("n",)),
                PlanOp(op_id="bar", kind="barrier"),
            ),
        )

    @pytest.mark.parametrize("backend", ["gasnet", "gpi2", "mpi"])
    def test_notify_lowers_on_every_backend(self, backend):
        world = ib_world() if backend == "gpi2" else gasnet_world()
        result = lower_plan(self.notify_plan(), backend, world.nranks).run(world)
        assert all(r["elapsed"] >= 0.0 for r in result.results)

    def test_prefetch_roundtrip(self):
        nbytes = 256
        plan = CommPlan(
            name="pf",
            steps=1,
            buffers=(BufDecl("X", nbytes, kind="asymmetric"),),
            body=(
                PlanOp(
                    op_id="p",
                    kind="put",
                    peer=Peer(+1),
                    src=Access(BufRef("X"), 0, 128),
                    dst=Access(BufRef("X"), 128, 128),
                ),
                PlanOp(op_id="fence", kind="fence", after=("p",)),
                PlanOp(op_id="bar", kind="barrier"),
            ),
        )
        optimized, stats = optimize_plan(plan)
        assert stats["prefetches_inserted"] == 1
        assert optimized.meta["pointer_prefetch"] is True
        world = gasnet_world()
        result = lower_plan(optimized, "gasnet", world.nranks).run(world)
        assert all(r["elapsed"] >= 0.0 for r in result.results)
