"""Tests for world construction, rank placement, SPMD launch, MemRef."""

import numpy as np
import pytest

from repro.cluster import MemRef, World, run_spmd
from repro.hardware import platform_a, platform_b, platform_c
from repro.util.errors import CommunicationError, ConfigurationError


class TestWorldPlacement:
    def test_default_one_gpu_per_rank(self):
        w = World(platform_a(), num_nodes=2)
        assert w.nranks == 8
        assert all(len(ctx.devices) == 1 for ctx in w.ranks)

    def test_rank_to_node_mapping(self):
        w = World(platform_a(), num_nodes=2)
        assert [ctx.node for ctx in w.ranks] == [0, 0, 0, 0, 1, 1, 1, 1]

    def test_multi_gpu_single_process(self):
        """The paper's single-process multi-GPU deployment (§3.3)."""
        w = World(platform_a(), num_nodes=2, devices_per_rank=4)
        assert w.nranks == 2
        assert len(w.ranks[0].devices) == 4
        ids = [d.device_id.index for d in w.ranks[0].devices]
        assert ids == [0, 1, 2, 3]

    def test_oversubscription_rejected(self):
        with pytest.raises(ConfigurationError, match="exceed"):
            World(platform_a(), num_nodes=1, ranks_per_node=3, devices_per_rank=2)

    def test_platform_b_eight_gcds(self):
        w = World(platform_b(), num_nodes=1)
        assert w.nranks == 8  # one rank per GCD

    def test_device_owner(self):
        w = World(platform_a(), num_nodes=1, devices_per_rank=2)
        dev = w.ranks[1].devices[1].device_id
        assert w.device_owner(dev) is w.ranks[1]

    def test_device_owner_unbound_gpu(self):
        # 2 ranks x 1 GPU on a 4-GPU node leaves GPUs 2 and 3 unbound.
        w = World(platform_a(), num_nodes=1, ranks_per_node=2)
        with pytest.raises(ConfigurationError, match="not bound"):
            w.device_owner(w.topology.gpu(0, 3))

    def test_same_node(self):
        w = World(platform_a(), num_nodes=2)
        assert w.same_node(0, 3)
        assert not w.same_node(0, 4)

    def test_devices_are_shared_objects(self):
        w = World(platform_c(), num_nodes=4)
        gpu = w.topology.gpu(2, 0)
        assert w.devices[gpu] is w.ranks[2].device


class TestRunSpmd:
    def test_results_ordered_by_rank(self):
        w = World(platform_a(), num_nodes=1)
        res = run_spmd(w, lambda ctx: ctx.rank * 10)
        assert res.results == [0, 10, 20, 30]

    def test_elapsed_is_max_rank_time(self):
        w = World(platform_a(), num_nodes=1)

        def prog(ctx):
            ctx.sim.sleep(float(ctx.rank))

        res = run_spmd(w, prog)
        assert res.elapsed == 3.0

    def test_extra_args_passed(self):
        w = World(platform_a(), num_nodes=1)
        res = run_spmd(w, lambda ctx, a, b: a + b + ctx.rank, 100, 1)
        assert res.results == [101, 102, 103, 104]

    def test_exception_propagates(self):
        w = World(platform_a(), num_nodes=1)

        def prog(ctx):
            if ctx.rank == 2:
                raise RuntimeError("rank 2 failed")

        with pytest.raises(RuntimeError, match="rank 2"):
            run_spmd(w, prog)

    def test_global_barrier(self):
        w = World(platform_a(), num_nodes=2)
        times = []

        def prog(ctx):
            ctx.sim.sleep(float(ctx.rank))
            ctx.world.global_barrier.wait()
            times.append(ctx.sim.now)

        run_spmd(w, prog)
        assert times == [7.0] * 8

    def test_world_is_single_use(self):
        w = World(platform_a(), num_nodes=1)
        run_spmd(w, lambda ctx: None)
        with pytest.raises(ConfigurationError, match="single-use"):
            run_spmd(w, lambda ctx: None)

    def test_empty_anomaly_rule_sequence_still_runs_detection(self):
        # Regression: `if telemetry.anomalies:` silently disabled
        # detection for an explicit-but-empty rule override.
        from repro.cluster.spmd import SpmdConfig, TelemetryConfig

        w = World(platform_a(), num_nodes=1)
        res = run_spmd(
            w,
            lambda ctx: None,
            config=SpmdConfig(telemetry=TelemetryConfig(anomalies=())),
        )
        assert res.anomalies is not None
        assert res.anomalies.ok

    def test_anomalies_false_disables_detection(self):
        from repro.cluster.spmd import SpmdConfig, TelemetryConfig

        w = World(platform_a(), num_nodes=1)
        res = run_spmd(
            w,
            lambda ctx: None,
            config=SpmdConfig(telemetry=TelemetryConfig(anomalies=False)),
        )
        assert res.anomalies is None


class TestMemRef:
    def test_host_roundtrip(self):
        arr = np.arange(10, dtype=np.float64)
        ref = MemRef.host(0, arr)
        assert ref.nbytes == 80
        np.testing.assert_array_equal(ref.typed(np.float64), arr)

    def test_device_ref_through_device(self):
        w = World(platform_a(), num_nodes=1)
        buf = w.ranks[0].device.malloc(64)
        ref = MemRef.device(buf)
        assert ref.is_device
        assert ref.endpoint == w.ranks[0].device.device_id

    def test_bare_space_rejected(self):
        from repro.device import DeviceMemorySpace

        space = DeviceMemorySpace(1024)
        buf = space.allocate(64)
        with pytest.raises(CommunicationError, match="not bound"):
            MemRef.device(buf)

    def test_copy_between_host_refs(self):
        a = np.arange(8, dtype=np.int64)
        b = np.zeros(8, dtype=np.int64)
        MemRef.host(0, b).copy_from(MemRef.host(1, a))
        np.testing.assert_array_equal(b, a)

    def test_copy_host_to_device(self):
        w = World(platform_a(), num_nodes=1)
        buf = w.ranks[0].device.malloc(64)
        src = np.arange(8, dtype=np.float64)
        MemRef.device(buf).copy_from(MemRef.host(0, src))
        np.testing.assert_array_equal(buf.as_array(np.float64, count=8), src)

    def test_size_mismatch_rejected(self):
        a = np.zeros(4, dtype=np.int8)
        b = np.zeros(8, dtype=np.int8)
        with pytest.raises(CommunicationError, match="mismatch"):
            MemRef.host(0, b).copy_from(MemRef.host(0, a))

    def test_slice(self):
        arr = np.arange(16, dtype=np.uint8)
        ref = MemRef.host(0, arr).slice(4, 8)
        assert ref.nbytes == 8
        np.testing.assert_array_equal(ref.view(), np.arange(4, 12, dtype=np.uint8))

    def test_slice_out_of_range(self):
        arr = np.zeros(16, dtype=np.uint8)
        with pytest.raises(CommunicationError):
            MemRef.host(0, arr).slice(10, 10)

    def test_virtual_copy_rules(self):
        w = World(platform_a(), num_nodes=1)
        dev = w.ranks[0].device
        v1 = MemRef.device(dev.malloc(64, virtual=True))
        v2 = MemRef.device(dev.malloc(64, virtual=True))
        r = MemRef.device(dev.malloc(64))
        v1.copy_from(v2)  # ok: timing only
        with pytest.raises(CommunicationError, match="virtual"):
            r.copy_from(v1)

    def test_noncontiguous_host_rejected(self):
        arr = np.zeros((4, 4))[:, ::2]
        with pytest.raises(CommunicationError, match="contiguous"):
            MemRef.host(0, arr)

    def test_typed_itemsize_mismatch(self):
        arr = np.zeros(10, dtype=np.uint8)
        with pytest.raises(CommunicationError, match="multiple"):
            MemRef.host(0, arr).typed(np.float64)
