"""Tests for Future error propagation and the RetryingOp state
machine: backoff, timeouts, attempt tokens, give-up taxonomy."""

import pytest

from repro.faults import RetryingOp, RetryPolicy
from repro.obs import Observability
from repro.sim import Future, Simulator
from repro.util.errors import (
    ConfigurationError,
    FatalError,
    FaultError,
    TimeoutError,
    TransientError,
)


class TestFutureErrors:
    def test_fail_raises_in_waiter(self):
        sim = Simulator()
        fut = Future(sim, description="doomed")
        out = {}

        def prog():
            try:
                fut.wait()
            except TransientError as e:
                out["err"] = str(e)

        sim.spawn(prog)
        sim.call_later(1e-6, lambda: fut.fail(TransientError("boom")))
        sim.run()
        assert out["err"] == "boom"

    def test_failed_future_polls_complete(self):
        sim = Simulator()
        fut = Future(sim)
        fut.fail(TransientError("x"))
        assert fut.poll()  # hybrid polling must converge on failures
        assert fut.error is not None

    def test_wait_after_fail_raises_immediately(self):
        sim = Simulator()
        fut = Future(sim)
        fut.fail(TransientError("x"))

        def prog():
            with pytest.raises(TransientError):
                fut.wait()

        sim.spawn(prog)
        sim.run()

    def test_done_callback_runs_on_fire_and_fail(self):
        sim = Simulator()
        seen = []
        ok, bad = Future(sim), Future(sim)
        ok.add_done_callback(lambda f: seen.append(("ok", f.error)))
        bad.add_done_callback(lambda f: seen.append(("bad", type(f.error))))
        ok.fire(42)
        bad.fail(TransientError("x"))
        assert seen == [("ok", None), ("bad", TransientError)]

    def test_done_callback_on_already_complete_future(self):
        sim = Simulator()
        fut = Future(sim)
        fut.fire(1)
        seen = []
        fut.add_done_callback(lambda f: seen.append(f.value))
        assert seen == [1]

    def test_taxonomy(self):
        for cls in (TransientError, TimeoutError, FatalError):
            assert issubclass(cls, FaultError)


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ConfigurationError):
            RetryPolicy(op_timeout=0.0)

    def test_exponential_backoff_with_ceiling(self):
        p = RetryPolicy(base_backoff=1e-6, backoff_factor=2.0, max_backoff=3e-6)
        assert p.backoff(1) == pytest.approx(1e-6)
        assert p.backoff(2) == pytest.approx(2e-6)
        assert p.backoff(3) == pytest.approx(3e-6)  # clamped
        assert p.backoff(10) == pytest.approx(3e-6)


def _flaky_issue(sim, fail_first_n, value="done", latency=1e-5):
    """An issue() closure failing its first ``fail_first_n`` attempts."""
    calls = {"n": 0}

    def issue():
        calls["n"] += 1
        fut = Future(sim, description=f"attempt{calls['n']}")
        if calls["n"] <= fail_first_n:
            fut.fail(TransientError(f"boom {calls['n']}"), delay=latency)
        else:
            fut.fire(value, delay=latency)
        return fut

    return issue, calls


class TestRetryingOp:
    def test_success_without_failure_is_passthrough(self):
        sim = Simulator()
        issue, calls = _flaky_issue(sim, fail_first_n=0)
        op = RetryingOp(sim, issue, RetryPolicy())
        out = {}
        sim.spawn(lambda: out.setdefault("v", op.future.wait()))
        sim.run()
        assert out["v"] == "done"
        assert calls["n"] == 1 and op.retries == 0

    def test_transient_retried_to_success(self):
        sim = Simulator()
        issue, calls = _flaky_issue(sim, fail_first_n=2)
        op = RetryingOp(sim, issue, RetryPolicy(max_attempts=4))
        out = {}
        sim.spawn(lambda: out.setdefault("v", op.future.wait()))
        sim.run()
        assert out["v"] == "done"
        assert calls["n"] == 3 and op.retries == 2

    def test_backoff_advances_virtual_clock(self):
        sim = Simulator()
        issue, _ = _flaky_issue(sim, fail_first_n=1, latency=1e-5)
        policy = RetryPolicy(base_backoff=1e-3, max_backoff=1e-3)
        op = RetryingOp(sim, issue, policy)
        out = {}

        def prog():
            op.future.wait()
            out["t"] = sim.now

        sim.spawn(prog)
        sim.run()
        # attempt1 (1e-5) + backoff (1e-3) + attempt2 (1e-5)
        assert out["t"] == pytest.approx(1e-3 + 2e-5)

    def test_exhausted_attempts_raise_fatal_with_cause(self):
        sim = Simulator()
        issue, calls = _flaky_issue(sim, fail_first_n=99)
        op = RetryingOp(sim, issue, RetryPolicy(max_attempts=3))
        out = {}

        def prog():
            try:
                op.future.wait()
            except FatalError as e:
                out["cause"] = e.__cause__

        sim.spawn(prog)
        sim.run()
        assert isinstance(out["cause"], TransientError)
        assert calls["n"] == 3  # budget respected

    def test_fatal_error_not_retried(self):
        sim = Simulator()
        calls = {"n": 0}

        def issue():
            calls["n"] += 1
            fut = Future(sim)
            fut.fail(FatalError("dead link"), delay=1e-6)
            return fut

        op = RetryingOp(sim, issue, RetryPolicy(max_attempts=5))
        out = {}

        def prog():
            with pytest.raises(FatalError, match="dead link"):
                op.future.wait()
            out["calls"] = calls["n"]

        sim.spawn(prog)
        sim.run()
        assert out["calls"] == 1

    def test_timeout_rescues_dropped_completion(self):
        sim = Simulator()
        calls = {"n": 0}

        def issue():
            calls["n"] += 1
            fut = Future(sim, description=f"attempt{calls['n']}")
            if calls["n"] == 1:
                return fut  # dropped: never fires
            fut.fire("late-but-fine", delay=1e-6)
            return fut

        op = RetryingOp(sim, issue, RetryPolicy(op_timeout=1e-4))
        out = {}
        sim.spawn(lambda: out.setdefault("v", op.future.wait()))
        sim.run()
        assert out["v"] == "late-but-fine"
        assert op.timeouts == 1

    def test_stale_completion_after_timeout_is_ignored(self):
        sim = Simulator()
        calls = {"n": 0}
        attempts = []

        def issue():
            calls["n"] += 1
            fut = Future(sim, description=f"attempt{calls['n']}")
            attempts.append(fut)
            if calls["n"] == 1:
                # Completes long after the timeout has reissued.
                fut.fire("stale", delay=1.0)
            else:
                fut.fire("fresh", delay=1e-6)
            return fut

        op = RetryingOp(sim, issue, RetryPolicy(op_timeout=1e-3))
        out = {}
        sim.spawn(lambda: out.setdefault("v", op.future.wait()))
        sim.run()
        assert out["v"] == "fresh"  # the stale firing did not double-fire

    def test_metrics_counters(self):
        sim = Simulator()
        obs = Observability()
        issue, _ = _flaky_issue(sim, fail_first_n=1)
        op = RetryingOp(
            sim, issue, RetryPolicy(), obs=obs, labels=dict(conduit="gasnet", op="put")
        )
        sim.spawn(op.future.wait)
        sim.run()
        assert obs.value("conduit.retries", conduit="gasnet", op="put") == 1
        assert obs.value("conduit.backoff_seconds") > 0

    def test_giveup_counted(self):
        sim = Simulator()
        obs = Observability()
        issue, _ = _flaky_issue(sim, fail_first_n=99)
        op = RetryingOp(sim, issue, RetryPolicy(max_attempts=2), obs=obs)

        def prog():
            with pytest.raises(FatalError):
                op.future.wait()

        sim.spawn(prog)
        sim.run()
        assert obs.value("conduit.giveups") == 1

    def test_eta_forwarded_from_attempt(self):
        sim = Simulator()

        def issue():
            fut = Future(sim)
            fut.eta = 42.0
            fut.fire(delay=1e-6)
            return fut

        op = RetryingOp(sim, issue, RetryPolicy())
        assert op.future.eta == 42.0
