"""Windowed time series: tumbling/sliding windows, bounded memory."""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.timeseries import TimeSeries, WindowSpec, WindowStats, WindowedSeries
from repro.util.errors import ConfigurationError


class TestWindowSpec:
    def test_tumbling_default(self):
        spec = WindowSpec(width=100e-6)
        assert spec.step == pytest.approx(100e-6)
        assert spec.overlap == 1

    def test_sliding(self):
        spec = WindowSpec(width=100e-6, slide=25e-6)
        assert spec.step == pytest.approx(25e-6)
        assert spec.overlap == 4

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            WindowSpec(width=0.0)
        with pytest.raises(ConfigurationError):
            WindowSpec(width=1.0, slide=2.0)  # slide > width
        with pytest.raises(ConfigurationError):
            WindowSpec(width=1.0, history=0)
        with pytest.raises(ConfigurationError):
            WindowSpec(width=1.0, max_samples=1)


class TestWindowStats:
    def test_exact_aggregates(self):
        w = WindowStats(0.0, 1.0, max_samples=256)
        for v in (3.0, 1.0, 2.0):
            w.observe(v)
        assert w.count == 3
        assert w.total == pytest.approx(6.0)
        assert w.minimum == 1.0 and w.maximum == 3.0
        assert w.mean == pytest.approx(2.0)
        assert w.percentile(0.5) == pytest.approx(2.0)

    def test_fraction_above(self):
        w = WindowStats(0.0, 1.0, max_samples=256)
        for v in (1.0, 2.0, 3.0, 4.0):
            w.observe(v)
        assert w.fraction_above(2.5) == pytest.approx(0.5)
        assert w.count_above(2.5) == pytest.approx(2.0)
        empty = WindowStats(0.0, 1.0, max_samples=256)
        assert empty.fraction_above(0.0) == 0.0

    def test_systematic_sampling_bounds_memory(self):
        w = WindowStats(0.0, 1.0, max_samples=8)
        for i in range(10_000):
            w.observe(float(i))
        # Exact aggregates survive decimation...
        assert w.count == 10_000
        assert w.maximum == 9999.0
        # ...while the retained sample set stays bounded.
        assert len(w._samples) <= 8

    def test_sampling_is_deterministic(self):
        def run():
            w = WindowStats(0.0, 1.0, max_samples=16)
            for i in range(5_000):
                w.observe(float(i % 97))
            return w.percentile(0.99), w._samples

        assert run() == run()


class TestWindowedSeries:
    def test_tumbling_fold(self):
        s = WindowedSeries(WindowSpec(width=100e-6))
        s.observe(10e-6, 1.0)
        s.observe(50e-6, 2.0)
        s.observe(150e-6, 3.0)
        assert len(s) == 2
        first, second = s.windows()
        assert first.count == 2 and first.total == pytest.approx(3.0)
        assert second.count == 1

    def test_sliding_fold_covers_overlap(self):
        s = WindowedSeries(WindowSpec(width=100e-6, slide=50e-6))
        s.observe(120e-6, 1.0)
        # The sample lands in the windows starting at 50us and 100us.
        covered = [w.start for w in s.windows() if w.count]
        assert covered == [pytest.approx(50e-6), pytest.approx(100e-6)]

    def test_ring_eviction(self):
        s = WindowedSeries(WindowSpec(width=10e-6, history=4))
        for i in range(100):
            s.observe(i * 10e-6, 1.0)
        assert len(s) == 4
        # Series-level totals survive eviction.
        assert s.count == 100

    def test_range_query(self):
        s = WindowedSeries(WindowSpec(width=10e-6, history=64))
        for i in range(10):
            s.observe(i * 10e-6, float(i))
        picked = s.range(25e-6, 55e-6)
        assert [w.start for w in picked] == [
            pytest.approx(20e-6),
            pytest.approx(30e-6),
            pytest.approx(40e-6),
            pytest.approx(50e-6),
        ]

    def test_gap_filling_makes_no_data_visible(self):
        s = WindowedSeries(WindowSpec(width=10e-6, history=64))
        s.observe(5e-6, 1.0)
        s.observe(45e-6, 1.0)
        entries = s.series(fill_gaps=True)
        assert len(entries) == 5
        assert [e["count"] for e in entries] == [1, 0, 0, 0, 1]


class TestTimeSeries:
    def test_registry_hook_feeds_windows(self):
        now = [0.0]
        reg = MetricsRegistry()
        ts = TimeSeries(clock=lambda: now[0], spec=WindowSpec(width=100e-6))
        ts.attach(reg)
        c = reg.counter("svc.jobs")
        h = reg.histogram("svc.wait")
        g = reg.gauge("svc.depth")
        c.inc(2.0)
        now[0] = 50e-6
        h.observe(1e-3)
        g.set(7.0)
        assert ts.series("svc.jobs").count == 1
        assert ts.series("svc.jobs").windows()[0].total == pytest.approx(2.0)
        assert ts.series("svc.wait").windows()[0].maximum == pytest.approx(1e-3)
        assert ts.series("svc.depth").count == 1
        ts.detach(reg)
        c.inc()
        assert ts.series("svc.jobs").count == 1  # detached: no more feed

    def test_metric_name_filters(self):
        reg = MetricsRegistry()
        ts = TimeSeries(clock=lambda: 0.0, metrics=("service.",)).attach(reg)
        reg.counter("service.jobs").inc()
        reg.counter("rma.ops").inc()
        assert ts.names() == ["service.jobs"]

    def test_group_by_labels(self):
        reg = MetricsRegistry()
        ts = TimeSeries(
            clock=lambda: 0.0, group_by=("tenant", "outcome")
        ).attach(reg)
        c = reg.counter("jobs")
        c.inc(tenant="acme", outcome="completed", kind="cannon")
        c.inc(tenant="acme", outcome="rejected", kind="cannon")
        c.inc(tenant="globex", outcome="completed", kind="minimod")
        # kind is not in group_by, so it does not split series.
        assert len(ts.matching("jobs")) == 3
        assert len(ts.matching("jobs", tenant="acme")) == 2
        only = ts.series("jobs", tenant="acme", outcome="rejected")
        assert only is not None and only.count == 1

    def test_series_cap_counts_drops(self):
        reg = MetricsRegistry()
        ts = TimeSeries(
            clock=lambda: 0.0, group_by=("tenant",), max_series=2
        ).attach(reg)
        c = reg.counter("jobs")
        for tenant in ("a", "b", "c", "d"):
            c.inc(tenant=tenant)
        assert len(ts.matching("jobs")) == 2
        assert ts.dropped == 2

    def test_total_windows_bounded(self):
        # The memory-bound invariant at scale: ring x series, never
        # proportional to the number of observations.
        now = [0.0]
        reg = MetricsRegistry()
        spec = WindowSpec(width=10e-6, history=8)
        ts = TimeSeries(clock=lambda: now[0], spec=spec).attach(reg)
        c = reg.counter("events")
        for i in range(50_000):
            now[0] = i * 1e-6
            c.inc()
        assert ts.total_windows() <= spec.history

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        ts = TimeSeries(
            clock=lambda: 0.0,
            spec=WindowSpec(width=100e-6, history=4),
            group_by=("tenant",),
        ).attach(reg)
        reg.counter("jobs").inc(tenant="acme")
        doc = ts.snapshot()
        assert doc["spec"]["history"] == 4
        assert doc["group_by"] == ["tenant"]
        (entry,) = doc["families"]["jobs"]
        assert entry["labels"] == {"tenant": "acme"}
        assert entry["count"] == 1
        assert entry["windows"][0]["count"] == 1

    def test_explicit_when_for_offline_replay(self):
        ts = TimeSeries(clock=lambda: 0.0, spec=WindowSpec(width=10e-6))
        ts.observe("x", 1.0, when=35e-6)
        (w,) = [w for w in ts.series("x").windows() if w.count]
        assert w.start == pytest.approx(30e-6)
