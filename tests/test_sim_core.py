"""Tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import Simulator, TaskState
from repro.util.errors import DeadlockError, SimulationError


class TestClockAndSleep:
    def test_empty_run_keeps_time_zero(self):
        sim = Simulator()
        assert sim.run() == 0.0

    def test_single_sleep_advances_clock(self):
        sim = Simulator()
        times = []

        def prog():
            sim.sleep(1.5)
            times.append(sim.now)

        sim.spawn(prog)
        sim.run()
        assert times == [1.5]
        assert sim.now == 1.5

    def test_sleeps_accumulate(self):
        sim = Simulator()

        def prog():
            for _ in range(4):
                sim.sleep(0.25)

        sim.spawn(prog)
        assert sim.run() == 1.0

    def test_zero_sleep_allowed(self):
        sim = Simulator()
        sim.spawn(lambda: sim.sleep(0.0))
        assert sim.run() == 0.0

    def test_negative_sleep_rejected(self):
        sim = Simulator()

        def prog():
            sim.sleep(-1.0)

        sim.spawn(prog)
        with pytest.raises(SimulationError):
            sim.run()


class TestInterleaving:
    def test_two_tasks_interleave_by_time(self):
        sim = Simulator()
        order = []

        def a():
            sim.sleep(1.0)
            order.append(("a", sim.now))
            sim.sleep(2.0)
            order.append(("a", sim.now))

        def b():
            sim.sleep(2.0)
            order.append(("b", sim.now))

        sim.spawn(a, name="a")
        sim.spawn(b, name="b")
        sim.run()
        assert order == [("a", 1.0), ("b", 2.0), ("a", 3.0)]

    def test_same_time_events_run_in_spawn_order(self):
        sim = Simulator()
        order = []
        for i in range(5):
            sim.spawn(lambda i=i: order.append(i), name=f"t{i}")
        sim.run()
        assert order == [0, 1, 2, 3, 4]

    def test_determinism_across_runs(self):
        def build():
            sim = Simulator()
            log = []

            def worker(i):
                sim.sleep(0.1 * (i % 3))
                log.append(i)
                sim.sleep(0.05)
                log.append(10 + i)

            for i in range(8):
                sim.spawn(worker, i, name=f"w{i}")
            sim.run()
            return log

        assert build() == build()


class TestSpawnAndJoin:
    def test_result_available_after_run(self):
        sim = Simulator()
        t = sim.spawn(lambda: 42)
        sim.run()
        assert t.state is TaskState.DONE
        assert t.result == 42

    def test_join_returns_result(self):
        sim = Simulator()
        got = []

        def child():
            sim.sleep(1.0)
            return "payload"

        def parent():
            t = sim.spawn(child, name="child")
            got.append(t.join())
            got.append(sim.now)

        sim.spawn(parent, name="parent")
        sim.run()
        assert got == ["payload", 1.0]

    def test_join_finished_task_returns_immediately(self):
        sim = Simulator()
        results = []

        def parent():
            t = sim.spawn(lambda: 7, name="quick")
            sim.sleep(5.0)  # child completes long before
            results.append(t.join())

        sim.spawn(parent)
        sim.run()
        assert results == [7]

    def test_nested_spawns(self):
        sim = Simulator()
        seen = []

        def leaf(i):
            sim.sleep(0.1)
            seen.append(i)

        def mid():
            kids = [sim.spawn(leaf, i) for i in range(3)]
            for k in kids:
                k.join()

        sim.spawn(mid)
        sim.run()
        assert sorted(seen) == [0, 1, 2]


class TestCallLater:
    def test_callback_fires_at_time(self):
        sim = Simulator()
        fired = []
        sim.call_later(2.0, lambda: fired.append(sim.now))
        sim.spawn(lambda: sim.sleep(3.0))
        sim.run()
        assert fired == [2.0]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.call_later(-0.5, lambda: None)


class TestErrors:
    def test_task_exception_propagates(self):
        sim = Simulator()

        def bad():
            raise ValueError("boom")

        sim.spawn(bad)
        with pytest.raises(ValueError, match="boom"):
            sim.run()

    def test_failure_kills_other_tasks(self):
        sim = Simulator()

        def sleeper():
            sim.sleep(100.0)

        def bad():
            sim.sleep(1.0)
            raise RuntimeError("abort")

        t = sim.spawn(sleeper)
        sim.spawn(bad)
        with pytest.raises(RuntimeError):
            sim.run()
        assert t.state is TaskState.KILLED

    def test_deadlock_detected(self):
        from repro.sim import Future

        sim = Simulator()

        def stuck():
            Future(sim, description="never").wait()

        sim.spawn(stuck, name="stuck")
        with pytest.raises(DeadlockError, match="stuck"):
            sim.run()

    def test_blocking_outside_task_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.sleep(1.0)

    def test_closed_simulator_rejects_spawn(self):
        sim = Simulator()
        sim.run()
        with pytest.raises(SimulationError):
            sim.spawn(lambda: None)


class TestBoundedRun:
    def test_run_until_pauses_and_resumes(self):
        sim = Simulator()
        marks = []

        def prog():
            sim.sleep(1.0)
            marks.append(sim.now)
            sim.sleep(1.0)
            marks.append(sim.now)

        sim.spawn(prog)
        sim.run(until=1.5)
        assert marks == [1.0]
        assert sim.now == 1.5
        sim.run()
        assert marks == [1.0, 2.0]

    def test_close_after_bounded_run(self):
        sim = Simulator()
        sim.spawn(lambda: sim.sleep(10.0))
        sim.run(until=1.0)
        sim.close()  # must not hang or raise

    def test_context_manager_closes(self):
        with Simulator() as sim:
            sim.spawn(lambda: sim.sleep(10.0))
            sim.run(until=1.0)
        # leaving the with-block kills the sleeper without error
