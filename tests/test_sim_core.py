"""Tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import Simulator, TaskState
from repro.util.errors import DeadlockError, SimulationError


class TestClockAndSleep:
    def test_empty_run_keeps_time_zero(self):
        sim = Simulator()
        assert sim.run() == 0.0

    def test_single_sleep_advances_clock(self):
        sim = Simulator()
        times = []

        def prog():
            sim.sleep(1.5)
            times.append(sim.now)

        sim.spawn(prog)
        sim.run()
        assert times == [1.5]
        assert sim.now == 1.5

    def test_sleeps_accumulate(self):
        sim = Simulator()

        def prog():
            for _ in range(4):
                sim.sleep(0.25)

        sim.spawn(prog)
        assert sim.run() == 1.0

    def test_zero_sleep_allowed(self):
        sim = Simulator()
        sim.spawn(lambda: sim.sleep(0.0))
        assert sim.run() == 0.0

    def test_negative_sleep_rejected(self):
        sim = Simulator()

        def prog():
            sim.sleep(-1.0)

        sim.spawn(prog)
        with pytest.raises(SimulationError):
            sim.run()


class TestInterleaving:
    def test_two_tasks_interleave_by_time(self):
        sim = Simulator()
        order = []

        def a():
            sim.sleep(1.0)
            order.append(("a", sim.now))
            sim.sleep(2.0)
            order.append(("a", sim.now))

        def b():
            sim.sleep(2.0)
            order.append(("b", sim.now))

        sim.spawn(a, name="a")
        sim.spawn(b, name="b")
        sim.run()
        assert order == [("a", 1.0), ("b", 2.0), ("a", 3.0)]

    def test_same_time_events_run_in_spawn_order(self):
        sim = Simulator()
        order = []
        for i in range(5):
            sim.spawn(lambda i=i: order.append(i), name=f"t{i}")
        sim.run()
        assert order == [0, 1, 2, 3, 4]

    def test_determinism_across_runs(self):
        def build():
            sim = Simulator()
            log = []

            def worker(i):
                sim.sleep(0.1 * (i % 3))
                log.append(i)
                sim.sleep(0.05)
                log.append(10 + i)

            for i in range(8):
                sim.spawn(worker, i, name=f"w{i}")
            sim.run()
            return log

        assert build() == build()


class TestSpawnAndJoin:
    def test_result_available_after_run(self):
        sim = Simulator()
        t = sim.spawn(lambda: 42)
        sim.run()
        assert t.state is TaskState.DONE
        assert t.result == 42

    def test_join_returns_result(self):
        sim = Simulator()
        got = []

        def child():
            sim.sleep(1.0)
            return "payload"

        def parent():
            t = sim.spawn(child, name="child")
            got.append(t.join())
            got.append(sim.now)

        sim.spawn(parent, name="parent")
        sim.run()
        assert got == ["payload", 1.0]

    def test_join_finished_task_returns_immediately(self):
        sim = Simulator()
        results = []

        def parent():
            t = sim.spawn(lambda: 7, name="quick")
            sim.sleep(5.0)  # child completes long before
            results.append(t.join())

        sim.spawn(parent)
        sim.run()
        assert results == [7]

    def test_nested_spawns(self):
        sim = Simulator()
        seen = []

        def leaf(i):
            sim.sleep(0.1)
            seen.append(i)

        def mid():
            kids = [sim.spawn(leaf, i) for i in range(3)]
            for k in kids:
                k.join()

        sim.spawn(mid)
        sim.run()
        assert sorted(seen) == [0, 1, 2]


class TestCallLater:
    def test_callback_fires_at_time(self):
        sim = Simulator()
        fired = []
        sim.call_later(2.0, lambda: fired.append(sim.now))
        sim.spawn(lambda: sim.sleep(3.0))
        sim.run()
        assert fired == [2.0]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.call_later(-0.5, lambda: None)


class TestErrors:
    def test_task_exception_propagates(self):
        sim = Simulator()

        def bad():
            raise ValueError("boom")

        sim.spawn(bad)
        with pytest.raises(ValueError, match="boom"):
            sim.run()

    def test_failure_kills_other_tasks(self):
        sim = Simulator()

        def sleeper():
            sim.sleep(100.0)

        def bad():
            sim.sleep(1.0)
            raise RuntimeError("abort")

        t = sim.spawn(sleeper)
        sim.spawn(bad)
        with pytest.raises(RuntimeError):
            sim.run()
        assert t.state is TaskState.KILLED

    def test_deadlock_detected(self):
        from repro.sim import Future

        sim = Simulator()

        def stuck():
            Future(sim, description="never").wait()

        sim.spawn(stuck, name="stuck")
        with pytest.raises(DeadlockError, match="stuck"):
            sim.run()

    def test_blocking_outside_task_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.sleep(1.0)

    def test_closed_simulator_rejects_spawn(self):
        sim = Simulator()
        sim.run()
        with pytest.raises(SimulationError):
            sim.spawn(lambda: None)


class TestBoundedRun:
    def test_run_until_pauses_and_resumes(self):
        sim = Simulator()
        marks = []

        def prog():
            sim.sleep(1.0)
            marks.append(sim.now)
            sim.sleep(1.0)
            marks.append(sim.now)

        sim.spawn(prog)
        sim.run(until=1.5)
        assert marks == [1.0]
        assert sim.now == 1.5
        sim.run()
        assert marks == [1.0, 2.0]

    def test_close_after_bounded_run(self):
        sim = Simulator()
        sim.spawn(lambda: sim.sleep(10.0))
        sim.run(until=1.0)
        sim.close()  # must not hang or raise

    def test_context_manager_closes(self):
        with Simulator() as sim:
            sim.spawn(lambda: sim.sleep(10.0))
            sim.run(until=1.0)
        # leaving the with-block kills the sleeper without error


class TestJoinErrorPropagation:
    def test_join_raises_child_error_in_joiner(self):
        # Regression: join() on a task that fails *later* used to
        # return None; the error now propagates to the joiner.
        sim = Simulator()
        caught = []

        def child():
            sim.sleep(1.0)
            raise ValueError("boom")

        def parent():
            task = sim.spawn(child, name="child")
            try:
                task.join()
            except ValueError as exc:
                caught.append((sim.now, str(exc)))

        sim.spawn(parent, name="parent")
        sim.run()  # handled in the joiner: the run completes normally
        assert caught == [(1.0, "boom")]

    def test_unhandled_join_error_fails_joiner_too(self):
        sim = Simulator()

        def child():
            raise ValueError("boom")

        def parent():
            sim.spawn(child).join()  # no except: re-raised here

        sim.spawn(parent)
        with pytest.raises(ValueError, match="boom"):
            sim.run()

    def test_join_already_failed_task_raises(self):
        sim = Simulator()
        caught = []

        def child():
            sim.sleep(1.0)
            raise ValueError("boom")

        def supervisor(task):
            try:
                task.join()
            except ValueError:
                caught.append("supervisor")

        def late_joiner(task):
            sim.sleep(2.0)  # well after the failure
            try:
                task.join()
            except ValueError:
                caught.append("late")

        def root():
            task = sim.spawn(child)
            sim.spawn(supervisor, task)
            sim.spawn(late_joiner, task)

        sim.spawn(root)
        sim.run()
        assert sorted(caught) == ["late", "supervisor"]

    def test_unsupervised_failure_still_aborts_run(self):
        sim = Simulator()
        sim.spawn(lambda: (_ for _ in ()).throw(ValueError("boom")))
        with pytest.raises(ValueError, match="boom"):
            sim.run()


class TestKill:
    def test_kill_unblocks_joiners(self):
        # Regression: join-waiters of a killed task never fired.
        sim = Simulator()
        caught = []

        def victim():
            sim.sleep(100.0)

        def root():
            task = sim.spawn(victim, name="victim")

            def joiner():
                try:
                    task.join()
                except SimulationError as exc:
                    caught.append((sim.now, str(exc)))

            sim.spawn(joiner)
            sim.sleep(1.0)
            task.kill()

        sim.spawn(root)
        sim.run()
        assert len(caught) == 1
        when, message = caught[0]
        assert when == 1.0
        assert "killed" in message

    def test_kill_unblocks_joiner_in_bounded_run(self):
        # The bounded-session variant of the hang: run(until=) used to
        # park the joiner forever with no deadlock detection to save it.
        sim = Simulator()
        done = []

        def victim():
            sim.sleep(100.0)

        def root():
            task = sim.spawn(victim)

            def joiner():
                try:
                    task.join()
                except SimulationError:
                    done.append(sim.now)

            sim.spawn(joiner)
            sim.sleep(1.0)
            task.kill()

        sim.spawn(root)
        sim.run(until=5.0)
        assert done == [1.0]
        sim.close()

    def test_kill_unstarted_task_never_runs(self):
        sim = Simulator()
        ran = []
        task = sim.spawn(lambda: ran.append(1))
        task.kill()
        assert task.state is TaskState.KILLED
        assert task._thread is None  # never needed a thread
        sim.run()
        assert ran == []

    def test_kill_finished_task_is_noop(self):
        sim = Simulator()
        task = sim.spawn(lambda: 42)
        sim.run()
        task.kill()
        assert task.state is TaskState.DONE
        assert task.result == 42

    def test_self_kill_rejected(self):
        sim = Simulator()

        def prog():
            task.kill()

        task = sim.spawn(prog)
        with pytest.raises(SimulationError):
            sim.run()


class TestLazyThreads:
    def test_threads_start_only_on_first_resume(self):
        sim = Simulator()
        tasks = [sim.spawn(sim.sleep, 1.0) for _ in range(4)]
        assert all(t._thread is None for t in tasks)
        sim.run()
        assert all(t.state is TaskState.DONE for t in tasks)

    def test_close_reaps_unstarted_tasks_without_threads(self):
        import threading

        sim = Simulator()
        before = threading.active_count()
        tasks = [sim.spawn(sim.sleep, 1.0) for _ in range(8)]
        assert threading.active_count() == before  # spawn is thread-free
        sim.close()
        assert threading.active_count() == before
        assert all(t.state is TaskState.KILLED for t in tasks)
        assert all(t._thread is None for t in tasks)


class TestSchedulerScaling:
    def test_512_tasks_wall_bound(self):
        # Smoke test for the calendar-queue scheduler: 512 tasks
        # stepping in lockstep (every resume lands in a shared
        # same-timestamp bucket) must stay comfortably interactive.
        import time

        sim = Simulator()
        done = []

        def worker(i):
            for _ in range(4):
                sim.sleep(1.0)
            done.append(i)

        t0 = time.perf_counter()
        for i in range(512):
            sim.spawn(worker, i)
        sim.run()
        assert time.perf_counter() - t0 < 30.0
        assert len(done) == 512
        assert done == sorted(done)  # batched resumes keep spawn order
        assert sim.now == 4.0
