"""End-to-end integration scenarios crossing the full stack."""

import numpy as np

from repro.cluster import MemRef, World, run_spmd
from repro.core import DiompParams, DiompRuntime
from repro.device.kernel import KernelCost
from repro.hardware import platform_a, platform_b, platform_c
from repro.mpi import MpiWorld
from repro.mpi import collectives as mpi_coll
from repro.omptarget import Map, MapType, TargetTaskQueue, host_parallel_for
from repro.util.units import KiB, MiB


class TestPipelineScenario:
    def test_map_compute_communicate_reduce(self):
        """The full DiOMP workflow on 2 nodes: map host data to the
        devices, run a target region, exchange results one-sided, then
        reduce a checksum over OMPCCL — everything verified."""
        w = World(platform_a(with_quirk=False), num_nodes=2)
        DiompRuntime(w)
        out = {}

        def prog(ctx):
            diomp = ctx.diomp
            n = 64
            # Host data, mapped into the (segment-backed) device space.
            host = np.full(n, float(ctx.rank), dtype=np.float64)
            diomp.omp.target(
                "square-plus-rank",
                KernelCost(flops=n * 2.0, bytes_moved=n * 16.0),
                maps=[Map(host, MapType.TOFROM)],
                body=lambda v: v.__imul__(2.0),
            )
            # Publish through a symmetric buffer and rotate one-sided.
            outbox = diomp.alloc(n * 8)
            inbox = diomp.alloc(n * 8)
            outbox.typed(np.float64)[:] = host
            diomp.barrier()
            diomp.put((ctx.rank + 1) % ctx.nranks, inbox, outbox.memref())
            diomp.fence()
            diomp.barrier()
            received = inbox.typed(np.float64)[0]
            # Checksum-reduce over OMPCCL.
            send = diomp.alloc(8)
            recv = diomp.alloc(8)
            send.typed(np.float64)[:] = received
            diomp.barrier()
            diomp.allreduce(send, recv)
            out[ctx.rank] = (received, recv.typed(np.float64)[0])

        run_spmd(w, prog)
        # received = 2 * left_rank; total = 2 * sum(0..7) = 56
        for r in range(8):
            assert out[r][0] == 2.0 * ((r - 1) % 8)
            assert out[r][1] == 56.0

    def test_deferred_tasks_feed_rma(self):
        """Target tasks produce data that is then pushed one-sided —
        the §5 task-parallel extension composed with the PGAS core."""
        w = World(platform_a(with_quirk=False), num_nodes=1)
        DiompRuntime(w)
        out = {}

        def prog(ctx):
            diomp = ctx.diomp
            q = TargetTaskQueue(diomp.omp)
            a = np.zeros(8)
            b = np.zeros(8)
            small = KernelCost(flops=1e6, bytes_moved=0)
            q.submit(
                "produce",
                small,
                maps=[Map(a, MapType.TOFROM)],
                body=lambda v: v.__iadd__(ctx.rank + 1),
                depends_out=[a],
            )
            q.submit(
                "double",
                small,
                maps=[Map(a, MapType.TO), Map(b, MapType.FROM)],
                body=lambda va, vb: vb.__iadd__(va * 2),
                depends_in=[a],
                depends_out=[b],
            )
            q.taskwait()
            gbuf = diomp.alloc(64)
            diomp.barrier()
            if ctx.rank == 0:
                diomp.put(2, gbuf, MemRef.host(ctx.node, b))
                diomp.fence()
            diomp.barrier()
            out[ctx.rank] = gbuf.typed(np.float64)[0]

        run_spmd(w, prog)
        assert out[2] == 2.0  # rank 0's (0+1)*2 landed in rank 2

    def test_host_and_device_work_overlap_model(self):
        """Host parallel-for runs while a nowait target region executes
        (the CPU+GPU coordination §3.3 argues for)."""
        w = World(platform_a(with_quirk=False), num_nodes=1, devices_per_rank=4)
        DiompRuntime(w)
        out = {}

        def prog(ctx):
            if ctx.rank != 0:
                return
            cost = KernelCost(flops=5e10, bytes_moved=0)  # ~6 ms
            region = ctx.diomp.omp.target("kernel", cost, nowait=True)
            host_time = host_parallel_for(ctx, 10**7, 20.0)  # uses 64 cores
            ctx.diomp.omp.finish_nowait(region)
            out["elapsed"] = ctx.sim.now
            out["host_time"] = host_time

        run_spmd(w, prog)
        gpu_time = KernelCost(flops=5e10, bytes_moved=0).duration_on(
            platform_a().node.gpu
        )
        # Overlapped: total is ~max(host, gpu), not their sum.
        assert out["elapsed"] < 1.2 * max(out["host_time"], gpu_time)


class TestMixedStacks:
    def test_diomp_and_mpi_coexist(self):
        """Both runtimes installed on one world (as during incremental
        porting): MPI collectives and DiOMP RMA interleave safely."""
        w = World(platform_a(with_quirk=False), num_nodes=2)
        DiompRuntime(w)
        mpi = MpiWorld(w)
        out = {}

        def prog(ctx):
            comm = mpi.comm_world(ctx.rank)
            g = ctx.diomp.alloc(64)
            g.typed(np.float64)[:] = float(ctx.rank)
            ctx.diomp.barrier()
            if ctx.rank == 0:
                ctx.diomp.put(7, g, g.memref())
                ctx.diomp.fence()
            # An MPI allreduce right after one-sided traffic.
            send = np.array([1.0])
            recv = np.zeros(1)
            mpi_coll.allreduce(
                comm, MemRef.host(ctx.node, send), MemRef.host(ctx.node, recv), np.float64
            )
            ctx.diomp.barrier()
            out[ctx.rank] = (g.typed(np.float64)[0], recv[0])

        run_spmd(w, prog)
        assert out[7][0] == 0.0  # DiOMP put landed
        assert all(v[1] == 8.0 for v in out.values())  # MPI reduce correct

    def test_gpi2_backend_full_workflow(self):
        """The complete DiOMP workflow on the GPI-2 conduit (IB)."""
        w = World(platform_c(), num_nodes=4)
        DiompRuntime(w, DiompParams(conduit="gpi2"))
        out = {}

        def prog(ctx):
            g = ctx.diomp.alloc(1 * KiB)
            g.typed(np.int32)[:] = ctx.rank
            ctx.diomp.barrier()
            if ctx.rank == 0:
                dst = np.zeros(256, dtype=np.int32)
                ctx.diomp.get(3, g, MemRef.host(ctx.node, dst))
                ctx.diomp.fence()
                out["v"] = dst[0]
            ctx.diomp.barrier()

        run_spmd(w, prog)
        assert out["v"] == 3

    def test_platform_b_gcd_workflow(self):
        """Full stack on the MI250X platform: 8 GCDs per node, xGMI
        two-tier wiring, RCCL collectives."""
        w = World(platform_b(), num_nodes=2)
        DiompRuntime(w)
        out = {}

        def prog(ctx):
            g = ctx.diomp.alloc(8)
            r = ctx.diomp.alloc(8)
            g.typed(np.float64)[:] = 1.0
            ctx.diomp.barrier()
            ctx.diomp.allreduce(g, r)
            out[ctx.rank] = r.typed(np.float64)[0]

        run_spmd(w, prog)
        assert all(v == 16.0 for v in out.values())


class TestScaleAndStress:
    def test_sixty_four_rank_barrier_storm(self):
        """16 nodes x 4 GPUs: repeated global barriers stay consistent."""
        w = World(platform_a(with_quirk=False), num_nodes=16)
        DiompRuntime(w)
        counters = []

        def prog(ctx):
            for i in range(5):
                ctx.diomp.barrier()
                counters.append((i, ctx.rank))

        run_spmd(w, prog)
        # All of round i happens before any of round i+1.
        rounds = [i for i, _r in counters]
        assert rounds == sorted(rounds)

    def test_many_small_allocs_and_frees(self):
        w = World(platform_a(with_quirk=False), num_nodes=1)
        DiompRuntime(w)

        def prog(ctx):
            live = []
            for i in range(20):
                live.append(ctx.diomp.alloc(256 * (i % 4 + 1)))
                if len(live) > 3:
                    ctx.diomp.free(live.pop(0))
            for g in live:
                ctx.diomp.free(g)
            assert ctx.diomp.segment(0).symmetric_allocator.live_allocations == 0

        run_spmd(w, prog)

    def test_fence_with_mixed_paths(self):
        """One fence drains intra-node IPC ops and inter-node conduit
        ops together (the hybrid polling loop's reason to exist)."""
        w = World(platform_a(with_quirk=False), num_nodes=2)
        DiompRuntime(w)
        stats = {}

        def prog(ctx):
            g = ctx.diomp.alloc(1 * MiB, virtual=True)
            ctx.diomp.barrier()
            if ctx.rank == 0:
                ctx.diomp.put(1, g, g.memref())  # NVLink / IPC
                ctx.diomp.put(4, g, g.memref())  # Slingshot / conduit
                ctx.diomp.put(2, g, g.memref())  # NVLink / IPC
                iters = ctx.diomp.rma.fence()
                stats["iters"] = iters
                stats["pending"] = ctx.diomp.rma.pending_ops
            ctx.diomp.barrier()

        run_spmd(w, prog)
        assert stats["pending"] == 0
        assert stats["iters"] >= 1
