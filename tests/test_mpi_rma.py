"""Tests for MPI RMA windows (lock/unlock, put/get, fence)."""

import numpy as np
import pytest

from repro.cluster import MemRef, World, run_spmd
from repro.gasnet import GasnetConduit
from repro.hardware import platform_a
from repro.mpi import MpiWorld, Window
from repro.mpi.rma import LOCK_EXCLUSIVE
from repro.util.errors import CommunicationError
from repro.util.units import KiB


def make_mpi(nodes=2):
    w = World(platform_a(with_quirk=False), num_nodes=nodes)
    return w, MpiWorld(w)


class TestWindowLifecycle:
    def test_create_is_collective(self):
        w, mpi = make_mpi()
        wins = {}

        def prog(ctx):
            comm = mpi.comm_world(ctx.rank)
            buf = ctx.device.malloc(1 * KiB)
            wins[ctx.rank] = Window.create(comm, MemRef.device(buf))

        run_spmd(w, prog)
        assert len(wins) == 8
        assert len({win.win_id for win in wins.values()}) == 1

    def test_free(self):
        w, mpi = make_mpi(nodes=1)

        def prog(ctx):
            comm = mpi.comm_world(ctx.rank)
            win = Window.create(comm, MemRef.device(ctx.device.malloc(64)))
            win.free()

        run_spmd(w, prog)


class TestLockPutUnlock:
    def test_put_visible_after_unlock(self):
        w, mpi = make_mpi()
        bufs = {}
        out = {}

        def prog(ctx):
            comm = mpi.comm_world(ctx.rank)
            buf = ctx.device.malloc(128)
            bufs[ctx.rank] = buf
            win = Window.create(comm, MemRef.device(buf))
            if ctx.rank == 0:
                src = ctx.device.malloc(128)
                src.as_array(np.float64)[:] = 2.5
                win.lock(5)
                win.put(MemRef.device(src), target=5)
                win.unlock(5)
                out["done_at"] = ctx.sim.now
            ctx.world.global_barrier.wait()
            if ctx.rank == 5:
                out["seen"] = buf.as_array(np.float64).copy()

        run_spmd(w, prog)
        np.testing.assert_allclose(out["seen"], 2.5)

    def test_get_fetches(self):
        w, mpi = make_mpi()
        out = {}

        def prog(ctx):
            comm = mpi.comm_world(ctx.rank)
            buf = ctx.device.malloc(64)
            buf.as_array(np.int32)[:] = ctx.rank
            win = Window.create(comm, MemRef.device(buf))
            if ctx.rank == 1:
                dst = ctx.device.malloc(64)
                win.lock(6)
                win.get(MemRef.device(dst), target=6)
                win.unlock(6)
                out["v"] = dst.as_array(np.int32).copy()
            ctx.world.global_barrier.wait()

        run_spmd(w, prog)
        np.testing.assert_array_equal(out["v"], 6)

    def test_put_with_offset(self):
        w, mpi = make_mpi()
        bufs = {}

        def prog(ctx):
            comm = mpi.comm_world(ctx.rank)
            buf = ctx.device.malloc(128)
            bufs[ctx.rank] = buf
            win = Window.create(comm, MemRef.device(buf))
            if ctx.rank == 0:
                src = ctx.device.malloc(8)
                src.as_array(np.float64)[:] = 9.0
                win.lock(2)
                win.put(MemRef.device(src), target=2, target_offset=64)
                win.unlock(2)
            ctx.world.global_barrier.wait()

        run_spmd(w, prog)
        arr = bufs[2].as_array(np.float64)
        assert arr[8] == 9.0 and arr[0] == 0.0

    def test_op_outside_epoch_rejected(self):
        w, mpi = make_mpi()

        def prog(ctx):
            comm = mpi.comm_world(ctx.rank)
            win = Window.create(comm, MemRef.device(ctx.device.malloc(64)))
            if ctx.rank == 0:
                src = ctx.device.malloc(64)
                win.put(MemRef.device(src), target=1)
            ctx.world.global_barrier.wait()

        with pytest.raises(CommunicationError, match="epoch"):
            run_spmd(w, prog)

    def test_double_lock_rejected(self):
        w, mpi = make_mpi()

        def prog(ctx):
            comm = mpi.comm_world(ctx.rank)
            win = Window.create(comm, MemRef.device(ctx.device.malloc(64)))
            if ctx.rank == 0:
                win.lock(1)
                win.lock(1)
            ctx.world.global_barrier.wait()

        with pytest.raises(CommunicationError, match="already open"):
            run_spmd(w, prog)

    def test_exclusive_locks_serialize(self):
        """Two ranks taking exclusive epochs on rank 0 must not overlap."""
        w, mpi = make_mpi()
        spans = []

        def prog(ctx):
            comm = mpi.comm_world(ctx.rank)
            win = Window.create(comm, MemRef.device(ctx.device.malloc(64)))
            if ctx.rank in (1, 2):
                src = ctx.device.malloc(64)
                win.lock(0, LOCK_EXCLUSIVE)
                start = ctx.sim.now
                win.put(MemRef.device(src), target=0)
                ctx.sim.sleep(1e-3)
                win.unlock(0)
                spans.append((start, ctx.sim.now))
            ctx.world.global_barrier.wait()

        run_spmd(w, prog)
        (s1, e1), (s2, e2) = sorted(spans)
        assert e1 <= s2  # no overlap


class TestFence:
    def test_fence_put_fence_pattern(self):
        """The classic active-target pattern from the paper's Listing 1
        comparison baseline."""
        w, mpi = make_mpi()
        bufs = {}

        def prog(ctx):
            comm = mpi.comm_world(ctx.rank)
            buf = ctx.device.malloc(64)
            bufs[ctx.rank] = buf
            win = Window.create(comm, MemRef.device(buf))
            win.fence()
            right = (ctx.rank + 1) % comm.size
            src = ctx.device.malloc(64)
            src.as_array(np.int64)[:] = ctx.rank
            win.put(MemRef.device(src), target=right)
            win.fence()

        run_spmd(w, prog)
        for r in range(8):
            np.testing.assert_array_equal(
                bufs[r].as_array(np.int64), (r - 1) % 8
            )


class TestCostStructure:
    def test_mpi_rma_put_slower_than_gasnet_put(self):
        """The core premise of Figs. 3-4: one-sided over GASNet beats
        MPI windows for the same physical transfer."""
        size = 8 * KiB

        def mpi_time():
            w, mpi = make_mpi()
            def prog(ctx):
                comm = mpi.comm_world(ctx.rank)
                buf = ctx.device.malloc(size, virtual=True)
                win = Window.create(comm, MemRef.device(buf))
                ctx.world.global_barrier.wait()
                t0 = ctx.sim.now
                if ctx.rank == 0:
                    src = ctx.device.malloc(size, virtual=True)
                    win.lock(4)
                    win.put(MemRef.device(src), target=4)
                    win.unlock(4)
                    return ctx.sim.now - t0
            return run_spmd(w, prog).results[0]

        def gasnet_time():
            w = World(platform_a(with_quirk=False), num_nodes=2)
            conduit = GasnetConduit(w)
            def prog(ctx):
                buf = ctx.device.malloc(size, virtual=True)
                conduit.client(ctx.rank).attach_segment(MemRef.device(buf))
                ctx.world.global_barrier.wait()
                t0 = ctx.sim.now
                if ctx.rank == 0:
                    src = ctx.device.malloc(size, virtual=True)
                    # address of rank 4's segment == its buffer address
                    addr = conduit.client(4).segments[0].base_address
                    conduit.client(0).put_nb(4, addr, MemRef.device(src)).wait()
                    return ctx.sim.now - t0
            return run_spmd(w, prog).results[0]

        assert gasnet_time() < mpi_time()
