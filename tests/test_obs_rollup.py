"""Cross-rank metric rollups: exact summaries, flat cardinality."""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.rollup import (
    exact_percentile,
    rollup_metric,
    rollup_registry,
    rollup_snapshot,
)
from repro.util.errors import ConfigurationError


class TestExactPercentile:
    def test_linear_interpolation(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert exact_percentile(values, 0.0) == 1.0
        assert exact_percentile(values, 1.0) == 4.0
        assert exact_percentile(values, 0.5) == pytest.approx(2.5)
        # numpy linear method: pos = 0.99 * 3 = 2.97
        assert exact_percentile(values, 0.99) == pytest.approx(3.97)

    def test_order_independent(self):
        assert exact_percentile([4.0, 1.0, 3.0, 2.0], 0.5) == pytest.approx(2.5)

    def test_edges(self):
        assert exact_percentile([], 0.5) == 0.0
        assert exact_percentile([7.0], 0.99) == 7.0
        with pytest.raises(ConfigurationError):
            exact_percentile([1.0], 1.5)


def make_registry(nranks=8):
    reg = MetricsRegistry()
    c = reg.counter("rma.ops")
    for r in range(nranks):
        c.inc(r + 1, rank=r, op="put")
        c.inc(2 * (r + 1), rank=r, op="get")
    g = reg.gauge("mem.used")
    for r in range(nranks):
        g.set(100.0 * r, rank=r)
    h = reg.histogram("lat", bounds=(1, 10, 100))
    for r in range(nranks):
        for _ in range(r + 1):
            h.observe(5.0, rank=r)
    reg.counter("cluster.total").inc(42)  # no rank label
    return reg


class TestRollupMetric:
    def test_counter_groups_exact(self):
        reg = make_registry(8)
        groups = rollup_metric(reg.counter("rma.ops"))
        assert len(groups) == 2  # one group per op, not per rank
        by_op = {g["labels"]["op"]: g for g in groups}
        put = by_op["put"]
        # Exact stats over per-rank values 1..8.
        assert put["ranks"] == 8
        assert put["min"] == 1.0 and put["max"] == 8.0
        assert put["mean"] == pytest.approx(4.5)
        assert put["sum"] == pytest.approx(36.0)
        assert put["p99"] == pytest.approx(exact_percentile([float(i) for i in range(1, 9)], 0.99))
        assert by_op["get"]["sum"] == pytest.approx(72.0)

    def test_histogram_groups(self):
        reg = make_registry(4)
        (group,) = rollup_metric(reg.histogram("lat"))
        assert group["ranks"] == 4
        # Per-rank observation counts 1..4.
        assert group["count"]["min"] == 1.0 and group["count"]["max"] == 4.0
        assert group["mean"]["mean"] == pytest.approx(5.0)

    def test_unranked_series_excluded(self):
        reg = make_registry(2)
        assert rollup_metric(reg.counter("cluster.total")) == []


class TestRollupRegistry:
    def test_families_and_flat_cardinality(self):
        reg = make_registry(16)
        doc = rollup_registry(reg)
        assert set(doc) == {"rma.ops", "mem.used", "lat", "cluster.total"}
        assert doc["rma.ops"]["kind"] == "counter"
        # Cardinality is label-combinations, not ranks.
        assert len(doc["rma.ops"]["groups"]) == 2
        assert len(doc["mem.used"]["groups"]) == 1

    def test_empty_family_contributes_explicit_entry(self):
        # "No data" must be visible: a registered family with zero
        # rank-labeled series appears with empty groups, so downstream
        # SLO math can tell "never measured" from "measured 100% good".
        reg = make_registry(2)
        doc = rollup_registry(reg)
        assert doc["cluster.total"] == {"kind": "counter", "groups": []}
        # The legacy shape is still available on request.
        legacy = rollup_registry(reg, include_empty=False)
        assert "cluster.total" not in legacy

    def test_size_flat_in_rank_count(self):
        import json

        small = len(json.dumps(rollup_registry(make_registry(4))))
        big = len(json.dumps(rollup_registry(make_registry(64))))
        # 16x the ranks must not produce anywhere near 16x the bytes.
        assert big < 2 * small


class TestRollupSnapshot:
    def test_shape_and_health(self):
        reg = make_registry(4)
        doc = rollup_snapshot(reg)
        assert set(doc) >= {"counters", "gauges", "histograms", "health", "rollup_label"}
        fam = doc["counters"]["rma.ops"]
        assert fam["series"] == []  # all series were rank-labeled
        assert len(fam["rollup"]) == 2
        # Unranked series pass through verbatim.
        total = doc["counters"]["cluster.total"]
        assert total["series"][0]["value"] == 42.0
        assert doc["health"]["total_series"] == reg.health()["total_series"]
        assert doc["histograms"]["lat"]["bounds"] == [1, 10, 100]

    def test_facade_entry_points(self):
        from repro.obs import Observability

        obs = Observability()
        obs.counter("x").inc(1, rank=0)
        obs.counter("x").inc(3, rank=1)
        roll = obs.rollup()
        assert roll["x"]["groups"][0]["sum"] == 4.0
        snap = obs.rollup_snapshot()
        assert snap["counters"]["x"]["rollup"][0]["ranks"] == 2
