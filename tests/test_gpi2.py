"""Tests for the GPI-2 (GASPI) conduit."""

import numpy as np
import pytest

from repro.cluster import MemRef, World, run_spmd
from repro.gasnet import GasnetConduit
from repro.gpi2 import Gpi2Conduit
from repro.hardware import platform_a, platform_c
from repro.util.errors import CommunicationError, ConfigurationError
from repro.util.units import KiB, MiB


def make_world(nodes=2):
    return World(platform_c(), num_nodes=nodes)


def setup_segments(world, conduit, size=1 * KiB):
    buffers = []
    for ctx in world.ranks:
        buf = ctx.device.malloc(size)
        conduit.client(ctx.rank).attach_segment(MemRef.device(buf))
        buffers.append(buf)
    return buffers


class TestEnvironmentGate:
    def test_infiniband_only(self):
        """The paper: GPI-2 'currently supports only InfiniBand'."""
        w = World(platform_a(), num_nodes=2)
        with pytest.raises(ConfigurationError, match="InfiniBand"):
            Gpi2Conduit(w)

    def test_platform_c_accepted(self):
        Gpi2Conduit(make_world())


class TestWriteRead:
    def test_write_moves_data(self):
        w = make_world()
        conduit = Gpi2Conduit(w)
        buffers = setup_segments(w, conduit)
        data = np.arange(32, dtype=np.int16)

        def prog(ctx):
            if ctx.rank == 0:
                local = ctx.device.malloc(64)
                local.as_array(np.int16)[:] = data
                conduit.client(0).put_nb(1, buffers[1].address, MemRef.device(local)).wait()
            ctx.world.global_barrier.wait()

        run_spmd(w, prog)
        np.testing.assert_array_equal(buffers[1].as_array(np.int16, count=32), data)

    def test_read_fetches_data(self):
        w = make_world()
        conduit = Gpi2Conduit(w)
        buffers = setup_segments(w, conduit)
        buffers[1].as_array(np.uint8)[:] = 9
        out = {}

        def prog(ctx):
            if ctx.rank == 0:
                local = ctx.device.malloc(1 * KiB)
                conduit.client(0).get_nb(1, buffers[1].address, MemRef.device(local)).wait()
                out["v"] = local.as_array(np.uint8).copy()

        run_spmd(w, prog)
        assert (out["v"] == 9).all()

    def test_queue_wait_drains_only_that_queue(self):
        w = make_world()
        conduit = Gpi2Conduit(w)
        buffers = setup_segments(w, conduit, size=256 * KiB)

        def prog(ctx):
            if ctx.rank == 0:
                client = conduit.client(0)
                local = ctx.device.malloc(256 * KiB)
                client.put_nb(
                    1, buffers[1].address, MemRef.device(local, nbytes=64 * KiB), queue=0
                )
                client.put_nb(
                    1,
                    buffers[1].address + 64 * KiB,
                    MemRef.device(local, offset=64 * KiB, nbytes=64 * KiB),
                    queue=1,
                )
                client.wait_queue(0)
                assert client.pending_count == 1  # queue 1 still pending
                client.wait_queue(1)
                assert client.pending_count == 0

        run_spmd(w, prog)

    def test_invalid_queue_rejected(self):
        w = make_world()
        conduit = Gpi2Conduit(w)
        buffers = setup_segments(w, conduit)

        def prog(ctx):
            if ctx.rank == 0:
                local = ctx.device.malloc(8)
                conduit.client(0).put_nb(
                    1, buffers[1].address, MemRef.device(local), queue=99
                )

        with pytest.raises(CommunicationError, match="queue"):
            run_spmd(w, prog)


class TestNotifications:
    def test_notify_wakes_waiter(self):
        w = make_world()
        conduit = Gpi2Conduit(w)
        values = []

        def prog(ctx):
            client = conduit.client(ctx.rank)
            if ctx.rank == 1:
                values.append(client.notification(7).wait())
            elif ctx.rank == 0:
                ctx.sim.sleep(1e-6)
                client.notify(1, 7, value=123)

        run_spmd(w, prog)
        assert values == [123]

    def test_notification_test_nonblocking(self):
        w = make_world()
        conduit = Gpi2Conduit(w)
        seen = []

        def prog(ctx):
            client = conduit.client(ctx.rank)
            if ctx.rank == 1:
                seen.append(client.notification(3).test())
                ctx.world.global_barrier.wait()
                ctx.sim.sleep(1e-4)
                seen.append(client.notification(3).test())
            else:
                ctx.world.global_barrier.wait()
                if ctx.rank == 0:
                    client.notify(1, 3)

        run_spmd(w, prog)
        assert seen == [False, True]


class TestFig5Calibration:
    """GPI-2 vs GASNet-EX put bandwidth: GPI-2 wins mid-size, GASNet
    pipelines very large transfers better (paper Fig. 5)."""

    def _put_bandwidth(self, conduit_cls, size):
        w = make_world()
        conduit = conduit_cls(w)
        buffers = []
        for ctx in w.ranks:
            buf = ctx.device.malloc(max(size, 1 * KiB), virtual=True)
            conduit.client(ctx.rank).attach_segment(MemRef.device(buf))
            buffers.append(buf)
        recs = []

        def prog(ctx):
            if ctx.rank == 0:
                local = ctx.device.malloc(size, virtual=True)
                recs.append(
                    conduit.client(0)
                    .put_nb(1, buffers[1].address, MemRef.device(local, nbytes=size))
                    .wait()
                )

        run_spmd(w, prog)
        return recs[0].achieved_bandwidth

    def test_gpi2_wins_midsize_put(self):
        size = 256 * KiB
        assert self._put_bandwidth(Gpi2Conduit, size) > self._put_bandwidth(
            GasnetConduit, size
        )

    def test_gasnet_wins_large_put(self):
        size = 32 * MiB
        assert self._put_bandwidth(GasnetConduit, size) > self._put_bandwidth(
            Gpi2Conduit, size
        )
