"""Tests for DiOMP groups, OMPCCL collectives and directives."""

import numpy as np
import pytest

from repro.cluster import MemRef, World, run_spmd
from repro.core import DiompParams, DiompRuntime
from repro.core.directives import execute_pragma, parse_pragma
from repro.hardware import platform_a
from repro.util.errors import CommunicationError, ConfigurationError


def make(nodes=2, platform=None, **kw):
    w = World(platform or platform_a(with_quirk=False), num_nodes=nodes)
    rt = DiompRuntime(w, DiompParams(**kw) if kw else None)
    return w, rt


class TestGroupHandles:
    def test_world_group_covers_everyone(self):
        w, rt = make()
        g = rt.world_group
        assert g.size == 8
        assert g.device_count == 8

    def test_group_rank_and_slots(self):
        w, rt = make()
        g = rt.world_group
        assert g.group_rank(5) == 5
        assert g.device_slots(5) == [5]

    def test_multi_device_slots(self):
        w = World(platform_a(with_quirk=False), num_nodes=2, devices_per_rank=4)
        rt = DiompRuntime(w)
        g = rt.world_group
        assert g.size == 2
        assert g.device_count == 8
        assert g.device_slots(1) == [4, 5, 6, 7]

    def test_nonmember_rejected(self):
        w, rt = make()

        def prog(ctx):
            if ctx.rank < 4:
                ctx.diomp.group_create([0, 1, 2, 3])
            ctx.diomp.barrier()
            if ctx.rank == 7:
                with pytest.raises(CommunicationError, match="not in"):
                    ctx.diomp.group_create([0, 1])
            ctx.diomp.barrier()

        run_spmd(w, prog)


class TestGroupLifecycle:
    def test_create_returns_shared_handle(self):
        w, rt = make()
        out = {}

        def prog(ctx):
            if ctx.rank < 4:
                g = ctx.diomp.group_create([0, 1, 2, 3])
                out[ctx.rank] = g.group_id
            ctx.diomp.barrier()

        run_spmd(w, prog)
        assert len(set(out.values())) == 1

    def test_split(self):
        w, rt = make()
        out = {}

        def prog(ctx):
            sub = ctx.diomp.group_split(ctx.diomp.world_group, ctx.rank % 2)
            out[ctx.rank] = tuple(sub.ranks)

        run_spmd(w, prog)
        assert out[0] == (0, 2, 4, 6)
        assert out[1] == (1, 3, 5, 7)

    def test_split_opt_out(self):
        w, rt = make()
        out = {}

        def prog(ctx):
            color = 0 if ctx.rank < 2 else -1
            sub = ctx.diomp.group_split(ctx.diomp.world_group, color)
            out[ctx.rank] = None if sub is None else tuple(sub.ranks)

        run_spmd(w, prog)
        assert out[0] == (0, 1)
        assert out[5] is None

    def test_merge_recomposition(self):
        """Two phase groups merged into a new logical group (§3.3)."""
        w, rt = make()
        out = {}
        halves = {}

        def prog(ctx):
            color = ctx.rank // 4
            half = ctx.diomp.group_split(ctx.diomp.world_group, color)
            halves[ctx.rank] = half
            ctx.diomp.barrier()
            # Every rank knows both halves (via any member's handle)
            # and merges them — all 8 ranks participate.
            merged = ctx.diomp.group_merge(halves[0], halves[4])
            out[ctx.rank] = tuple(merged.ranks)

        run_spmd(w, prog)
        assert all(v == (0, 1, 2, 3, 4, 5, 6, 7) for v in out.values())

    def test_scoped_barrier(self):
        """ompx_barrier(group) releases the group without waiting for
        non-members (the paper's 'avoids unnecessary global sync')."""
        w, rt = make()
        times = {}

        def prog(ctx):
            if ctx.rank < 4:
                sub = ctx.diomp.group_create([0, 1, 2, 3])
                ctx.sim.sleep(1e-3 * ctx.rank)
                ctx.diomp.barrier(sub)
                times[ctx.rank] = ctx.sim.now
            else:
                ctx.sim.sleep(1.0)  # slowpokes outside the group
            ctx.world.global_barrier.wait()

        run_spmd(w, prog)
        assert max(times.values()) < 0.01  # did not wait for the 1 s ranks


class TestOmpcclCollectives:
    def test_bcast_symmetric_buffer(self):
        w, rt = make()
        out = {}

        def prog(ctx):
            g = ctx.diomp.alloc(64)
            if ctx.rank == 2:
                g.typed(np.float64)[:] = 3.25
            ctx.diomp.barrier()
            ctx.diomp.bcast(g, root_rank=2)
            out[ctx.rank] = g.typed(np.float64)[0]

        run_spmd(w, prog)
        assert all(v == 3.25 for v in out.values())

    def test_allreduce(self):
        w, rt = make()
        out = {}

        def prog(ctx):
            send = ctx.diomp.alloc(64)
            recv = ctx.diomp.alloc(64)
            send.typed(np.float64)[:] = float(ctx.rank)
            ctx.diomp.barrier()
            ctx.diomp.allreduce(send, recv)
            out[ctx.rank] = recv.typed(np.float64)[0]

        run_spmd(w, prog)
        assert all(v == 28.0 for v in out.values())

    def test_reduce_to_root(self):
        w, rt = make()
        out = {}

        def prog(ctx):
            send = ctx.diomp.alloc(8)
            send.typed(np.float64)[:] = 2.0
            recv = ctx.diomp.alloc(8)
            ctx.diomp.barrier()
            ctx.diomp.reduce(send, recv, root_rank=3)
            out[ctx.rank] = recv.typed(np.float64)[0]

        run_spmd(w, prog)
        assert out[3] == 16.0
        assert out[0] == 0.0  # non-roots untouched

    def test_group_scoped_allreduce(self):
        w, rt = make()
        out = {}

        def prog(ctx):
            sub = ctx.diomp.group_split(ctx.diomp.world_group, ctx.rank % 2)
            send = ctx.diomp.alloc(8)
            recv = ctx.diomp.alloc(8)
            send.typed(np.float64)[:] = float(ctx.rank)
            ctx.diomp.barrier()
            ctx.diomp.allreduce(send, recv, group=sub)
            out[ctx.rank] = recv.typed(np.float64)[0]

        run_spmd(w, prog)
        assert out[0] == 0 + 2 + 4 + 6
        assert out[1] == 1 + 3 + 5 + 7

    def test_uid_exchange_once_per_rank(self):
        w, rt = make()

        def prog(ctx):
            g = ctx.diomp.alloc(8)
            r = ctx.diomp.alloc(8)
            ctx.diomp.barrier()
            ctx.diomp.allreduce(g, r)
            ctx.diomp.allreduce(g, r)  # channels cached

        run_spmd(w, prog)
        # 7 non-root ranks fetch the UniqueId exactly once each.
        assert rt.ompccl.uid_exchanges == 7

    def test_single_process_multi_gpu_collective(self):
        """§3.3's headline: one rank drives 4 GPUs; the collective runs
        over 8 device slots across 2 ranks."""
        w = World(platform_a(with_quirk=False), num_nodes=2, devices_per_rank=4)
        DiompRuntime(w)
        out = {}

        def prog(ctx):
            sends, recvs = [], []
            for d, dev in enumerate(ctx.devices):
                s = dev.malloc(8)
                s.as_array(np.float64)[:] = float(ctx.rank * 4 + d)
                sends.append(MemRef.device(s))
                recvs.append(MemRef.device(dev.malloc(8)))
            ctx.diomp.barrier()
            ctx.diomp.allreduce(sends, recvs)
            out[ctx.rank] = [r.typed(np.float64)[0] for r in recvs]

        run_spmd(w, prog)
        # Sum over slots 0..7 = 28 on every device.
        assert out[0] == [28.0] * 4
        assert out[1] == [28.0] * 4


class TestDirectives:
    def test_parse_basic(self):
        p = parse_pragma("#pragma ompx target device_bcast(var, grp)")
        assert p.directive == "device_bcast"
        assert p.args == ("var", "grp")

    def test_parse_kwargs(self):
        p = parse_pragma("#pragma ompx target device_bcast(x, root=3)")
        assert p.kwargs == {"root": "3"}

    def test_parse_barrier_no_args(self):
        assert parse_pragma("#pragma ompx barrier").directive == "barrier"

    def test_parse_rejects_garbage(self):
        with pytest.raises(ConfigurationError):
            parse_pragma("#pragma omp parallel for")
        with pytest.raises(ConfigurationError):
            parse_pragma("#pragma ompx target device_teleport(x)")
        with pytest.raises(ConfigurationError):
            parse_pragma("#pragma ompx target device_bcast(a, b, c, d, e)")

    def test_execute_bcast_pragma(self):
        w, rt = make()
        out = {}

        def prog(ctx):
            g = ctx.diomp.alloc(32)
            if ctx.rank == 0:
                g.typed(np.int32)[:] = 41
            ctx.diomp.barrier()
            execute_pragma(
                ctx.diomp,
                "#pragma ompx target device_bcast(v, root=0)",
                env={"v": g},
            )
            out[ctx.rank] = g.typed(np.int32)[0]

        run_spmd(w, prog)
        assert all(v == 41 for v in out.values())

    def test_execute_allreduce_pragma(self):
        w, rt = make()
        out = {}

        def prog(ctx):
            s = ctx.diomp.alloc(8)
            r = ctx.diomp.alloc(8)
            s.typed(np.float64)[:] = 1.0
            ctx.diomp.barrier()
            execute_pragma(
                ctx.diomp,
                "#pragma ompx target device_allreduce(s, r)",
                env={"s": s, "r": r},
            )
            out[ctx.rank] = r.typed(np.float64)[0]

        run_spmd(w, prog)
        assert all(v == 8.0 for v in out.values())

    def test_execute_unknown_symbol_rejected(self):
        w, rt = make(nodes=1)

        def prog(ctx):
            execute_pragma(ctx.diomp, "#pragma ompx target device_bcast(ghost)")

        with pytest.raises(ConfigurationError, match="environment"):
            run_spmd(w, prog)

    def test_fence_and_barrier_pragmas(self):
        w, rt = make(nodes=1)

        def prog(ctx):
            execute_pragma(ctx.diomp, "#pragma ompx fence")
            execute_pragma(ctx.diomp, "#pragma ompx barrier")

        run_spmd(w, prog)


class TestNewCollectives:
    def test_allgather_world(self):
        w, rt = make()
        out = {}

        def prog(ctx):
            send = ctx.diomp.alloc(8)
            recv = ctx.diomp.alloc(8 * 8)
            send.typed(np.float64)[:] = float(ctx.rank)
            ctx.diomp.barrier()
            ctx.diomp.allgather(send, recv)
            out[ctx.rank] = recv.typed(np.float64).copy()

        run_spmd(w, prog)
        for r in range(8):
            np.testing.assert_array_equal(out[r], np.arange(8.0))

    def test_reduce_scatter_world(self):
        w, rt = make()
        out = {}

        def prog(ctx):
            send = ctx.diomp.alloc(8 * 8)
            recv = ctx.diomp.alloc(8)
            send.typed(np.float64)[:] = np.arange(8.0)
            ctx.diomp.barrier()
            ctx.diomp.reduce_scatter(send, recv)
            out[ctx.rank] = recv.typed(np.float64)[0]

        run_spmd(w, prog)
        # Block j summed over 8 identical contributions = 8 j.
        assert out == {r: 8.0 * r for r in range(8)}

    def test_alltoall_world(self):
        w, rt = make()
        out = {}

        def prog(ctx):
            send = ctx.diomp.alloc(8 * 8)
            recv = ctx.diomp.alloc(8 * 8)
            send.typed(np.float64)[:] = 10.0 * ctx.rank + np.arange(8.0)
            ctx.diomp.barrier()
            ctx.diomp.alltoall(send, recv)
            out[ctx.rank] = recv.typed(np.float64).copy()

        run_spmd(w, prog)
        for r in range(8):
            np.testing.assert_array_equal(out[r], 10.0 * np.arange(8) + r)

    def test_chained_merge_split_allgather_reduce_scatter_multi_device(self):
        """Chained recomposition on a multi-device world: split the
        world, merge the halves back, then run the new group-scoped
        collectives over both the merged group and a split half."""
        w = World(platform_a(with_quirk=False), num_nodes=2, devices_per_rank=2)
        DiompRuntime(w)
        halves = {}
        out = {}

        def prog(ctx):
            half = ctx.diomp.group_split(ctx.diomp.world_group, ctx.rank % 2)
            halves[ctx.rank] = half
            ctx.diomp.barrier()
            merged = ctx.diomp.group_merge(halves[0], halves[1])
            assert merged.device_count == 8

            # allgather over the merged group: 8 slots, 2 per rank.
            sends, recvs = [], []
            for d, dev in enumerate(ctx.devices):
                slot = merged.device_slots(ctx.rank)[d]
                s = dev.malloc(8)
                s.as_array(np.float64)[:] = float(slot)
                sends.append(MemRef.device(s))
                recvs.append(MemRef.device(dev.malloc(8 * 8)))
            ctx.diomp.allgather(sends, recvs, group=merged)
            out[("ag", ctx.rank)] = [r.typed(np.float64).copy() for r in recvs]

            # reduce_scatter over the split half (4 slots).
            sends, recvs = [], []
            for dev in ctx.devices:
                s = dev.malloc(8 * 4)
                s.as_array(np.float64)[:] = np.arange(4.0)
                sends.append(MemRef.device(s))
                recvs.append(MemRef.device(dev.malloc(8)))
            ctx.diomp.reduce_scatter(sends, recvs, group=half)
            out[("rs", ctx.rank)] = [
                (half.device_slots(ctx.rank)[d], r.typed(np.float64)[0])
                for d, r in enumerate(recvs)
            ]

        run_spmd(w, prog)
        for r in range(4):
            for got in out[("ag", r)]:
                np.testing.assert_array_equal(got, np.arange(8.0))
            for slot, val in out[("rs", r)]:
                # Block j summed over 4 identical arange contributions.
                assert val == 4.0 * slot

    def test_group_scoped_allgather_after_split(self):
        w, rt = make()
        out = {}

        def prog(ctx):
            sub = ctx.diomp.group_split(ctx.diomp.world_group, ctx.rank % 2)
            send = ctx.diomp.alloc(8)
            recv = ctx.diomp.alloc(8 * 4)
            send.typed(np.float64)[:] = float(ctx.rank)
            ctx.diomp.barrier()
            ctx.diomp.allgather(send, recv, group=sub)
            out[ctx.rank] = recv.typed(np.float64).copy()

        run_spmd(w, prog)
        np.testing.assert_array_equal(out[0], [0.0, 2.0, 4.0, 6.0])
        np.testing.assert_array_equal(out[1], [1.0, 3.0, 5.0, 7.0])


class TestGroupIdDeterminism:
    def _run_once(self):
        w, rt = make()
        ids = {}

        def prog(ctx):
            sub = ctx.diomp.group_split(ctx.diomp.world_group, ctx.rank % 2)
            quarter = ctx.diomp.group_split(sub, ctx.rank // 4)
            ids[ctx.rank] = (
                ctx.diomp.world_group.group_id,
                sub.group_id,
                quarter.group_id,
            )
            send = ctx.diomp.alloc(8)
            recv = ctx.diomp.alloc(8)
            send.typed(np.float64)[:] = 1.0
            ctx.diomp.barrier(sub)
            ctx.diomp.allreduce(send, recv, group=sub)

        run_spmd(w, prog)
        labels = sorted(
            {(s.name, s.args["group"]) for s in w.obs.spans if "group" in s.args}
        )
        return ids, labels

    def test_back_to_back_runs_yield_identical_ids_and_labels(self):
        """Regression: group ids came from a module-global counter, so a
        second identical run in the same process saw different ids (and
        different ``group=`` span/metric labels)."""
        first = self._run_once()
        second = self._run_once()
        assert first == second

    def test_world_group_is_id_zero(self):
        w, rt = make()
        assert rt.world_group.group_id == 0
        w2, rt2 = make()
        assert rt2.world_group.group_id == 0
