"""Scaling contracts: rank count must not change simulation semantics.

Companions to the 1024-rank sweeps in :mod:`repro.bench.scale` and
``benchmarks/bench_scale_1024.py``, kept small enough for tier-1:

* the batched/calendar-queue scheduler produces *bit-identical*
  reduction results at 8 and 512 ranks (integer-valued float64 data,
  so the exact sum is order-independent and any dropped or duplicated
  contribution shows up as a hard mismatch);
* a 512-rank collective run stays comfortably under an interactive
  wall-clock bound;
* the truncated-Cannon extrapolation used by the 1024-rank sweep is
  validated against a *full* small-scale rotation — the ring steps are
  homogeneous (identical put/fence/barrier pattern), with only the
  final step cheaper because it skips the forward put.
"""

import time

import numpy as np
import pytest

from repro.apps.cannon import CannonConfig, run_cannon
from repro.cluster.spmd import run_spmd
from repro.cluster.world import World
from repro.core.runtime import DiompParams, DiompRuntime
from repro.hardware.platforms import get_platform
from repro.obs import Observability

#: elements in the allreduce payload
COUNT = 64

#: generous wall-clock bound for the 512-rank run (measured ~0.5 s)
WALL_BOUND = 30.0


def _allreduce_sum(num_nodes):
    """Run an 8-byte-aligned allreduce on ``4 * num_nodes`` ranks."""
    spec = get_platform("A")
    world = World(
        spec, num_nodes=num_nodes, obs=Observability(max_series_per_metric=8192)
    )
    DiompRuntime(world, DiompParams(segment_size=1 << 20))

    def prog(ctx):
        send = ctx.diomp.alloc(COUNT * 8)
        recv = ctx.diomp.alloc(COUNT * 8)
        send.typed(np.float64)[:] = float(ctx.rank % 7 + 1)
        ctx.diomp.barrier()
        ctx.diomp.allreduce(send, recv)
        return recv.typed(np.float64).copy()

    res = run_spmd(world, prog)
    return world.nranks, res.results


class TestAllreduceScaling:
    @pytest.mark.parametrize("num_nodes", [2, 128], ids=["8ranks", "512ranks"])
    def test_allreduce_bit_identical(self, num_nodes):
        # Integer-valued contributions are exact in float64 whatever
        # the reduction order: the result must be *bit-identical* to
        # the closed-form sum on every rank, at 8 and 512 ranks alike.
        t0 = time.perf_counter()
        nranks, results = _allreduce_sum(num_nodes)
        wall = time.perf_counter() - t0
        assert nranks == 4 * num_nodes
        expected = np.full(COUNT, float(sum(r % 7 + 1 for r in range(nranks))))
        for arr in results:
            assert np.array_equal(arr, expected)
        assert wall < WALL_BOUND


class TestCannonExtrapolation:
    def _elapsed(self, num_nodes, steps=None):
        spec = get_platform("A")
        world = World(spec, num_nodes=num_nodes)
        cfg = CannonConfig(n=1024, execute=False, steps=steps)
        res = run_cannon(world, cfg)
        return world.nranks, max(r["elapsed"] for r in res.results)

    def test_ring_steps_are_homogeneous(self):
        # The scale sweep's justification: every step prices
        # identically, so elapsed is exactly linear in the step count.
        _, e1 = self._elapsed(4, steps=1)
        _, e2 = self._elapsed(4, steps=2)
        _, e3 = self._elapsed(4, steps=3)
        assert e2 - e1 == pytest.approx(e1, rel=1e-9)
        assert e3 - e2 == pytest.approx(e1, rel=1e-9)

    def test_truncated_extrapolation_matches_full_run(self):
        # predicted = per_step * P is a slight upper bound on the full
        # rotation: the final step skips the forward put.  All P-1
        # forwarding steps must match the truncated measurement
        # exactly; the bound must hold and be tight at this scale.
        p, full = self._elapsed(4)
        _, e2 = self._elapsed(4, steps=2)
        per_step = e2 / 2
        _, all_but_last = self._elapsed(4, steps=p - 1)
        assert all_but_last == pytest.approx(per_step * (p - 1), rel=1e-9)
        assert full <= per_step * p * (1 + 1e-9)
        assert full == pytest.approx(per_step * p, rel=0.10)

    def test_truncated_requires_timing_only(self):
        from repro.util.errors import ConfigurationError

        spec = get_platform("A")
        world = World(spec, num_nodes=1)
        with pytest.raises(ConfigurationError):
            run_cannon(world, CannonConfig(n=64, execute=True, steps=2))

    def test_analytic_mode_preserves_timing(self):
        # Analytic-rank mode drops the data plane only: modelled times
        # are bit-identical to a real virtual-buffer run.
        spec = get_platform("A")
        _, timed = self._elapsed(1, steps=2)
        world = World(spec, num_nodes=1, analytic=True)
        res = run_cannon(world, CannonConfig(n=1024, execute=False, steps=2))
        analytic = max(r["elapsed"] for r in res.results)
        assert analytic == timed
