"""Unit tests for repro.util.units formatting and parsing."""

import pytest
from hypothesis import given, strategies as st

from repro.util.units import (
    GiB,
    KiB,
    MiB,
    format_bandwidth,
    format_bytes,
    format_time,
    parse_size,
)


class TestFormatBytes:
    def test_bytes(self):
        assert format_bytes(0) == "0 B"
        assert format_bytes(4) == "4 B"
        assert format_bytes(1023) == "1023 B"

    def test_exact_multiples_have_no_decimal(self):
        assert format_bytes(KiB) == "1 KiB"
        assert format_bytes(128 * KiB) == "128 KiB"
        assert format_bytes(64 * MiB) == "64 MiB"
        assert format_bytes(2 * GiB) == "2 GiB"

    def test_fractional(self):
        assert format_bytes(1536) == "1.5 KiB"

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            format_bytes(-1)


class TestFormatTime:
    def test_zero(self):
        assert format_time(0) == "0 s"

    def test_nanoseconds(self):
        assert format_time(5e-9) == "5.0 ns"

    def test_microseconds(self):
        assert format_time(2.5e-6) == "2.50 us"

    def test_milliseconds(self):
        assert format_time(3.2e-3) == "3.20 ms"

    def test_seconds(self):
        assert format_time(1.5) == "1.500 s"

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            format_time(-1e-6)


class TestFormatBandwidth:
    def test_gbps(self):
        assert format_bandwidth(25e9) == "25.00 GB/s"

    def test_mbps(self):
        assert format_bandwidth(5e6) == "5.00 MB/s"

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            format_bandwidth(-1.0)


class TestParseSize:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("4", 4),
            ("4B", 4),
            ("8K", 8 * KiB),
            ("8KB", 8 * KiB),
            ("8 KiB", 8 * KiB),
            ("64M", 64 * MiB),
            ("64MiB", 64 * MiB),
            ("2g", 2 * GiB),
        ],
    )
    def test_parse(self, text, expected):
        assert parse_size(text) == expected

    def test_unknown_unit_rejected(self):
        with pytest.raises(ValueError):
            parse_size("8 parsecs")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            parse_size("KB")

    @given(st.integers(min_value=0, max_value=10**12))
    def test_roundtrip_bytes(self, n):
        assert parse_size(f"{n}B") == n

    @given(
        st.integers(min_value=1, max_value=4096),
        st.sampled_from(["K", "M", "G"]),
    )
    def test_roundtrip_units(self, n, unit):
        factor = {"K": KiB, "M": MiB, "G": GiB}[unit]
        assert parse_size(f"{n}{unit}") == n * factor
