"""Tests for mini-MPI two-sided point-to-point communication."""

import numpy as np
import pytest

from repro.cluster import MemRef, World, run_spmd
from repro.hardware import platform_a
from repro.mpi import ANY_SOURCE, ANY_TAG, MpiParams, MpiWorld, waitall
from repro.util.errors import CommunicationError
from repro.util.units import KiB, MiB


def make_mpi(nodes=2, params=None):
    w = World(platform_a(with_quirk=False), num_nodes=nodes)
    return w, MpiWorld(w, params)


def href(ctx, arr):
    return MemRef.host(ctx.node, arr)


class TestBlockingSendRecv:
    def test_eager_roundtrip(self):
        w, mpi = make_mpi()
        out = {}

        def prog(ctx):
            comm = mpi.comm_world(ctx.rank)
            if ctx.rank == 0:
                data = np.arange(100, dtype=np.int32)
                comm.send(href(ctx, data), dest=1, tag=7)
            elif ctx.rank == 1:
                buf = np.zeros(100, dtype=np.int32)
                status = comm.recv(href(ctx, buf), source=0, tag=7)
                out["data"] = buf.copy()
                out["status"] = status

        run_spmd(w, prog)
        np.testing.assert_array_equal(out["data"], np.arange(100, dtype=np.int32))
        assert out["status"][0] == 0 and out["status"][1] == 7

    def test_rendezvous_roundtrip(self):
        w, mpi = make_mpi()
        size = 256 * KiB  # above eager threshold
        out = {}

        def prog(ctx):
            comm = mpi.comm_world(ctx.rank)
            if ctx.rank == 0:
                data = np.full(size, 7, dtype=np.uint8)
                comm.send(href(ctx, data), dest=1)
            elif ctx.rank == 1:
                buf = np.zeros(size, dtype=np.uint8)
                comm.recv(href(ctx, buf), source=0)
                out["ok"] = bool((buf == 7).all())

        run_spmd(w, prog)
        assert out["ok"]

    def test_send_before_recv_posted(self):
        """Unexpected-message queue: the send arrives first."""
        w, mpi = make_mpi()
        out = {}

        def prog(ctx):
            comm = mpi.comm_world(ctx.rank)
            if ctx.rank == 0:
                comm.send(href(ctx, np.array([42], dtype=np.int64)), dest=1)
            elif ctx.rank == 1:
                ctx.sim.sleep(1e-3)  # let the message arrive unexpected
                buf = np.zeros(1, dtype=np.int64)
                comm.recv(href(ctx, buf), source=0)
                out["v"] = buf[0]

        run_spmd(w, prog)
        assert out["v"] == 42

    def test_recv_before_send_posted(self):
        w, mpi = make_mpi()
        out = {}

        def prog(ctx):
            comm = mpi.comm_world(ctx.rank)
            if ctx.rank == 1:
                buf = np.zeros(1, dtype=np.int64)
                comm.recv(href(ctx, buf), source=0)
                out["v"] = buf[0]
            elif ctx.rank == 0:
                ctx.sim.sleep(1e-3)
                comm.send(href(ctx, np.array([9], dtype=np.int64)), dest=1)

        run_spmd(w, prog)
        assert out["v"] == 9

    def test_message_ordering_same_source_tag(self):
        """Messages from one source with one tag arrive in order."""
        w, mpi = make_mpi()
        out = []

        def prog(ctx):
            comm = mpi.comm_world(ctx.rank)
            if ctx.rank == 0:
                for i in range(5):
                    comm.send(href(ctx, np.array([i], dtype=np.int32)), dest=1, tag=3)
            elif ctx.rank == 1:
                for _ in range(5):
                    buf = np.zeros(1, dtype=np.int32)
                    comm.recv(href(ctx, buf), source=0, tag=3)
                    out.append(int(buf[0]))

        run_spmd(w, prog)
        assert out == [0, 1, 2, 3, 4]

    def test_overflow_rejected(self):
        w, mpi = make_mpi()

        def prog(ctx):
            comm = mpi.comm_world(ctx.rank)
            if ctx.rank == 0:
                comm.send(href(ctx, np.zeros(100, dtype=np.uint8)), dest=1)
            elif ctx.rank == 1:
                comm.recv(href(ctx, np.zeros(10, dtype=np.uint8)), source=0)

        with pytest.raises(CommunicationError, match="overflow"):
            run_spmd(w, prog)


class TestWildcards:
    def test_any_source(self):
        w, mpi = make_mpi()
        out = {}

        def prog(ctx):
            comm = mpi.comm_world(ctx.rank)
            if ctx.rank == 3:
                comm.send(href(ctx, np.array([33], dtype=np.int32)), dest=0, tag=5)
            elif ctx.rank == 0:
                buf = np.zeros(1, dtype=np.int32)
                src, tag, _ = comm.recv(href(ctx, buf), source=ANY_SOURCE, tag=5)
                out["src"] = src

        run_spmd(w, prog)
        assert out["src"] == 3

    def test_any_tag(self):
        w, mpi = make_mpi()
        out = {}

        def prog(ctx):
            comm = mpi.comm_world(ctx.rank)
            if ctx.rank == 1:
                comm.send(href(ctx, np.array([1], dtype=np.int8)), dest=0, tag=99)
            elif ctx.rank == 0:
                buf = np.zeros(1, dtype=np.int8)
                _, tag, _ = comm.recv(href(ctx, buf), source=1, tag=ANY_TAG)
                out["tag"] = tag

        run_spmd(w, prog)
        assert out["tag"] == 99

    def test_tag_selectivity(self):
        """A recv with tag=2 must not match a tag=1 message."""
        w, mpi = make_mpi()
        order = []

        def prog(ctx):
            comm = mpi.comm_world(ctx.rank)
            if ctx.rank == 0:
                comm.send(href(ctx, np.array([1], dtype=np.int8)), dest=1, tag=1)
                comm.send(href(ctx, np.array([2], dtype=np.int8)), dest=1, tag=2)
            elif ctx.rank == 1:
                buf = np.zeros(1, dtype=np.int8)
                comm.recv(href(ctx, buf), source=0, tag=2)
                order.append(int(buf[0]))
                comm.recv(href(ctx, buf), source=0, tag=1)
                order.append(int(buf[0]))

        run_spmd(w, prog)
        assert order == [2, 1]


class TestNonBlocking:
    def test_isend_irecv_waitall(self):
        w, mpi = make_mpi()
        out = {}

        def prog(ctx):
            comm = mpi.comm_world(ctx.rank)
            if ctx.rank == 0:
                reqs = [
                    comm.isend(href(ctx, np.array([i], dtype=np.int32)), dest=1, tag=i)
                    for i in range(4)
                ]
                waitall(reqs)
            elif ctx.rank == 1:
                bufs = [np.zeros(1, dtype=np.int32) for _ in range(4)]
                reqs = [
                    comm.irecv(href(ctx, bufs[i]), source=0, tag=i) for i in range(4)
                ]
                waitall(reqs)
                out["vals"] = [int(b[0]) for b in bufs]

        run_spmd(w, prog)
        assert out["vals"] == [0, 1, 2, 3]

    def test_request_test_transitions(self):
        w, mpi = make_mpi()
        seen = []

        def prog(ctx):
            comm = mpi.comm_world(ctx.rank)
            if ctx.rank == 1:
                buf = np.zeros(1 * MiB, dtype=np.uint8)
                req = comm.irecv(href(ctx, buf), source=0)
                seen.append(req.test())
                req.wait()
                seen.append(req.test())
            elif ctx.rank == 0:
                comm.send(href(ctx, np.ones(1 * MiB, dtype=np.uint8)), dest=1)

        run_spmd(w, prog)
        assert seen == [False, True]

    def test_sendrecv_ring_no_deadlock(self):
        """All 8 ranks exchange simultaneously around a ring."""
        w, mpi = make_mpi()
        out = {}

        def prog(ctx):
            comm = mpi.comm_world(ctx.rank)
            right = (ctx.rank + 1) % comm.size
            left = (ctx.rank - 1) % comm.size
            send = np.array([ctx.rank], dtype=np.int32)
            recv = np.zeros(1, dtype=np.int32)
            comm.sendrecv(href(ctx, send), right, href(ctx, recv), left)
            out[ctx.rank] = int(recv[0])

        run_spmd(w, prog)
        assert out == {r: (r - 1) % 8 for r in range(8)}


class TestDeviceAware:
    def test_device_to_device_send(self):
        w, mpi = make_mpi()
        out = {}

        def prog(ctx):
            comm = mpi.comm_world(ctx.rank)
            if ctx.rank == 0:
                buf = ctx.device.malloc(128)
                buf.as_array(np.float64)[:] = 3.14
                comm.send(MemRef.device(buf), dest=4)
            elif ctx.rank == 4:
                buf = ctx.device.malloc(128)
                comm.recv(MemRef.device(buf), source=0)
                out["v"] = buf.as_array(np.float64).copy()

        run_spmd(w, prog)
        np.testing.assert_allclose(out["v"], 3.14)

    def test_intra_node_device_staging_data_path(self):
        """Classic MPI stages same-node device messages through host
        memory (two PCIe hops) — slower than the direct NVLink path
        and the reason DiOMP wins intra-node in §4.5.  Disabling the
        staging knob restores the direct path."""

        def time_pair(src, dst, staging):
            w = World(platform_a(with_quirk=False), num_nodes=2)
            mpi = MpiWorld(w, MpiParams(intra_node_device_staging=staging))
            size = 4 * MiB

            def prog(ctx):
                comm = mpi.comm_world(ctx.rank)
                if ctx.rank == src:
                    buf = ctx.device.malloc(size, virtual=True)
                    comm.send(MemRef.device(buf), dest=dst)
                elif ctx.rank == dst:
                    buf = ctx.device.malloc(size, virtual=True)
                    comm.recv(MemRef.device(buf), source=src)

            return run_spmd(w, prog).elapsed

        staged = time_pair(0, 1, staging=True)
        direct = time_pair(0, 1, staging=False)
        assert direct < staged  # NVLink beats two PCIe hops
        # Staging also touches the host links, not the NVLink pair.
        assert staged > time_pair(0, 4, staging=True) * 0.5  # same order  # NVLink vs Slingshot


class TestCommSplit:
    def test_split_into_halves(self):
        w, mpi = make_mpi()
        out = {}

        def prog(ctx):
            comm = mpi.comm_world(ctx.rank)
            color = ctx.rank // 4
            sub = comm.split(color, key=ctx.rank)
            out[ctx.rank] = (sub.rank, sub.size, color)

        run_spmd(w, prog)
        for r in range(8):
            assert out[r] == (r % 4, 4, r // 4)

    def test_split_subcomm_isolated_from_world(self):
        """Messages in a subcommunicator never match COMM_WORLD recvs."""
        w, mpi = make_mpi(nodes=1)
        out = {}

        def prog(ctx):
            comm = mpi.comm_world(ctx.rank)
            sub = comm.split(0, key=ctx.rank)  # everyone, same group
            if ctx.rank == 0:
                sub.send(href(ctx, np.array([5], dtype=np.int8)), dest=1, tag=0)
                comm.send(href(ctx, np.array([6], dtype=np.int8)), dest=1, tag=0)
            elif ctx.rank == 1:
                buf = np.zeros(1, dtype=np.int8)
                comm.recv(href(ctx, buf), source=0, tag=0)
                out["world"] = int(buf[0])
                sub.recv(href(ctx, buf), source=0, tag=0)
                out["sub"] = int(buf[0])

        run_spmd(w, prog)
        assert out == {"world": 6, "sub": 5}

    def test_negative_color_excluded(self):
        w, mpi = make_mpi(nodes=1)
        out = {}

        def prog(ctx):
            comm = mpi.comm_world(ctx.rank)
            color = 0 if ctx.rank < 2 else -1
            sub = comm.split(color, key=ctx.rank)
            out[ctx.rank] = None if sub is None else sub.size

        run_spmd(w, prog)
        assert out == {0: 2, 1: 2, 2: None, 3: None}
