"""Tests for the fault plan: spec matching, nth/budget/probability
gates, determinism, observability binding."""

import pytest

from repro.faults import FAILURE_KINDS, FAULT_KINDS, FaultPlan, FaultSpec
from repro.obs import Observability
from repro.util.errors import ConfigurationError


class TestSpecValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="fault kind"):
            FaultSpec(site="conduit.put", kind="bitflip")

    def test_probability_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError, match="probability"):
            FaultSpec(site="*", probability=1.5)

    def test_latency_kinds_need_positive_latency(self):
        for kind in ("latency", "late", "stall"):
            with pytest.raises(ConfigurationError, match="positive latency"):
                FaultSpec(site="*", kind=kind)

    def test_nth_and_budget_validated(self):
        with pytest.raises(ConfigurationError, match="nth"):
            FaultSpec(site="*", nth=0)
        with pytest.raises(ConfigurationError, match="max_injections"):
            FaultSpec(site="*", max_injections=0)

    def test_failure_kinds_are_fault_kinds(self):
        assert set(FAILURE_KINDS) <= set(FAULT_KINDS)

    def test_non_spec_entry_rejected(self):
        with pytest.raises(ConfigurationError, match="FaultSpec"):
            FaultPlan([{"site": "*"}])


class TestMatching:
    def test_exact_site(self):
        spec = FaultSpec(site="conduit.put")
        assert spec.matches("conduit.put", None, None)
        assert not spec.matches("conduit.get", None, None)

    def test_dotted_prefix(self):
        spec = FaultSpec(site="conduit")
        assert spec.matches("conduit.put", 3, "put")
        assert spec.matches("conduit.get", None, None)
        assert not spec.matches("conduitx.put", None, None)
        assert not spec.matches("rma.intra", None, None)

    def test_star_matches_everything(self):
        spec = FaultSpec(site="*")
        assert spec.matches("fabric.transfer", 0, "get")
        assert spec.matches("stream.sync", None, None)

    def test_rank_and_op_filters(self):
        spec = FaultSpec(site="*", rank=2, op="put")
        assert spec.matches("conduit.put", 2, "put")
        assert not spec.matches("conduit.put", 1, "put")
        assert not spec.matches("conduit.put", 2, "get")


class TestDraw:
    def test_first_matching_spec_wins(self):
        plan = FaultPlan(
            [
                FaultSpec(site="conduit.put", kind="drop"),
                FaultSpec(site="conduit", kind="transient"),
            ]
        )
        action = plan.draw("conduit.put", rank=0, op="put")
        assert action.kind == "drop"
        assert plan.draw("conduit.get").kind == "transient"

    def test_nth_counts_matching_occurrences(self):
        plan = FaultPlan([FaultSpec(site="conduit.put", nth=3)])
        assert plan.draw("conduit.put") is None
        assert plan.draw("conduit.get") is None  # does not advance counter
        assert plan.draw("conduit.put") is None
        assert plan.draw("conduit.put") is not None  # third matching call
        assert plan.draw("conduit.put") is None  # nth only, not "from nth on"
        assert plan.injected == 1

    def test_max_injections_budget(self):
        plan = FaultPlan([FaultSpec(site="*", max_injections=2)])
        hits = [plan.draw("conduit.put") for _ in range(5)]
        assert sum(a is not None for a in hits) == 2
        assert plan.injections_of(0) == 2

    def test_probability_is_seed_deterministic(self):
        def outcomes(seed):
            plan = FaultPlan([FaultSpec(site="*", probability=0.5)], seed=seed)
            return [plan.draw("conduit.put") is not None for _ in range(64)]

        assert outcomes(7) == outcomes(7)
        assert outcomes(7) != outcomes(8)
        assert 0 < sum(outcomes(7)) < 64  # actually probabilistic

    def test_no_match_returns_none(self):
        plan = FaultPlan([FaultSpec(site="conduit.put")])
        assert plan.draw("stream.sync") is None

    def test_action_carries_latency_and_fatal(self):
        plan = FaultPlan(
            [
                FaultSpec(site="stream.sync", kind="latency", latency=1e-5),
                FaultSpec(site="conduit.put", kind="transient", fatal=True),
            ]
        )
        lat = plan.draw("stream.sync")
        assert lat.latency == 1e-5 and not lat.is_failure
        bad = plan.draw("conduit.put")
        assert bad.fatal and bad.is_failure

    def test_snapshot_reports_matches_and_injections(self):
        plan = FaultPlan([FaultSpec(site="conduit.put", nth=2)])
        plan.draw("conduit.put")
        plan.draw("conduit.put")
        snap = plan.snapshot()
        assert snap == [
            {"site": "conduit.put", "kind": "transient", "matches": 2, "injections": 1}
        ]


class TestObservability:
    def test_bind_counts_injections(self):
        obs = Observability()
        plan = FaultPlan([FaultSpec(site="*", kind="latency", latency=2e-6)]).bind(obs)
        plan.draw("conduit.put", rank=1, op="put")
        assert obs.value("faults.injected") == 1
        assert obs.value("faults.injected", site="conduit.put", kind="latency") == 1
        assert obs.value("faults.delay_seconds") == pytest.approx(2e-6)

    def test_disabled_obs_is_noop(self):
        plan = FaultPlan([FaultSpec(site="*")]).bind(Observability(enabled=False))
        assert plan.draw("conduit.put") is not None  # still injects


class TestCannedPlans:
    def test_transient_per_op_one_spec_per_site(self):
        plan = FaultPlan.transient_per_op()
        assert len(plan) == 3
        # Each op class fails exactly once, on its first occurrence.
        assert plan.draw("conduit.put") is not None
        assert plan.draw("conduit.put") is None
        assert plan.draw("conduit.get") is not None
        assert plan.draw("conduit.am") is not None
        assert plan.injected == 3

    def test_chaos_covers_sites_and_bounds_failures(self):
        plan = FaultPlan.chaos(seed=1, failure_probability=1.0, max_failures=2)
        sites = {s.site for s in plan.specs}
        assert {"conduit.put", "conduit.get", "rma.intra", "stream.sync"} <= sites
        hits = [plan.draw("conduit.put") for _ in range(6)]
        failures = [a for a in hits if a is not None and a.is_failure]
        assert len(failures) == 2  # max_failures caps the transient spec
