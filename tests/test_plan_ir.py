"""Communication-plan IR: verifier rejections and pass behavior."""

import pytest

from repro.plan import (
    ALWAYS,
    NOT_FIRST_RANK,
    NOT_LAST_RANK,
    NOT_LAST_STEP,
    Access,
    BufDecl,
    BufRef,
    CollSpec,
    CommPlan,
    HaloSide,
    HaloSpec,
    Peer,
    PlanOp,
    accesses_conflict,
    cannon_plan,
    check_plan,
    coalesce_messages,
    expand_halo,
    explain_pipeline,
    guard_holds,
    insert_prefetch,
    minimod_plan,
    optimize_plan,
    overlap_schedule,
    pass_stats,
    preselect_collectives,
    verify_plan,
)
from repro.apps import CannonConfig, MinimodConfig
from repro.device.kernel import Kernel
from repro.util.errors import ConfigurationError, PlanVerificationError


def kern(name="k"):
    return Kernel(name=name, cost=lambda *_a: 1e-6, host_fn=None)


def plan_of(body, buffers=(BufDecl("X", 1024),), steps=1, **kw):
    return CommPlan(name="t", steps=steps, buffers=tuple(buffers), body=tuple(body), **kw)


def put(op_id="p", guard=ALWAYS, peer=Peer(-1), src=None, dst=None, **kw):
    return PlanOp(
        op_id=op_id,
        kind="put",
        guard=guard,
        peer=peer,
        src=src or Access(BufRef("X"), 0, 512),
        dst=dst or Access(BufRef("X"), 512, 512),
        **kw,
    )


BAR = PlanOp(op_id="bar", kind="barrier")
FENCE = PlanOp(op_id="fence", kind="fence")


class TestSymbols:
    def test_guards(self):
        assert guard_holds(ALWAYS, 0, 4, 0, 4)
        assert not guard_holds(NOT_FIRST_RANK, 0, 4, 0, 4)
        assert guard_holds(NOT_FIRST_RANK, 1, 4, 0, 4)
        assert not guard_holds(NOT_LAST_RANK, 3, 4, 0, 4)
        assert guard_holds(NOT_LAST_STEP, 0, 4, 2, 4)
        assert not guard_holds(NOT_LAST_STEP, 0, 4, 3, 4)
        with pytest.raises(ConfigurationError, match="unknown guard"):
            guard_holds("sometimes", 0, 4, 0, 4)

    def test_peer_resolution(self):
        assert Peer(-1).resolve(0, 4) == 3  # wraps
        assert Peer(-1, wrap=False).resolve(0, 4) is None
        assert Peer(+1, wrap=False).resolve(3, 4) is None
        assert Peer(+1, wrap=False).source(2, 4) == 1
        assert Peer(-1).source(3, 4) == 0

    def test_accesses_conflict_respects_rotation(self):
        decls = {"X": BufDecl("X", 1024, count=2, rotating=True)}
        a = Access(BufRef("X", 0), 0, 512)
        b = Access(BufRef("X", 1), 0, 512)
        assert not accesses_conflict(decls, a, b)
        assert accesses_conflict(decls, a, Access(BufRef("X", 0), 256, 16))
        assert not accesses_conflict(decls, a, Access(BufRef("X", 0), 512, 16))

    def test_buffer_validation(self):
        with pytest.raises(ConfigurationError, match="kind"):
            BufDecl("X", 1024, kind="shared")
        with pytest.raises(ConfigurationError, match="positive"):
            BufDecl("X", 0)
        ring = BufDecl("X", 8, count=2, rotating=True)
        assert ring.instance(1, 3) == 0
        assert BufDecl("Y", 8, count=2).instance(1, 3) == 1


class TestVerifierRejections:
    def assert_issue(self, plan, fragment, nranks=4):
        issues = verify_plan(plan, nranks)
        assert any(fragment in i for i in issues), issues

    def test_sound_plan_is_clean(self):
        p = plan_of([put(), FENCE, BAR])
        assert verify_plan(p, 4) == []
        check_plan(p, 4)  # no raise

    def test_dangling_buffer(self):
        p = plan_of([put(src=Access(BufRef("GHOST"), 0, 8)), FENCE, BAR])
        self.assert_issue(p, "dangling")

    def test_rotation_outside_ring(self):
        p = plan_of([put(src=Access(BufRef("X", 2), 0, 8)), FENCE, BAR])
        self.assert_issue(p, "rotation")

    def test_access_out_of_bounds(self):
        p = plan_of([put(dst=Access(BufRef("X"), 1000, 512)), FENCE, BAR])
        self.assert_issue(p, "outside buffer")

    def test_rma_against_local_buffer(self):
        p = plan_of(
            [put(), FENCE, BAR], buffers=(BufDecl("X", 1024, kind="local"),)
        )
        self.assert_issue(p, "rank-local")

    def test_unknown_dependency(self):
        p = plan_of([put(after=("nope",)), FENCE, BAR])
        self.assert_issue(p, "unknown op")

    def test_schedule_violates_edge(self):
        p = plan_of([put("a", after=("fence",)), FENCE, BAR])
        self.assert_issue(p, "scheduled before")

    def test_cyclic_dependencies(self):
        k1 = PlanOp(op_id="c1", kind="compute", kernel=kern(), after=("c2",))
        k2 = PlanOp(op_id="c2", kind="compute", kernel=kern(), after=("c1",))
        self.assert_issue(plan_of([k1, k2, BAR]), "cyclic")

    def test_cross_rank_mismatch(self):
        # A non-wrapping peer with an ALWAYS guard falls off the rank
        # line at the edge: the MPI pairing would not be total.
        p = plan_of([put(peer=Peer(-1, wrap=False)), FENCE, BAR])
        self.assert_issue(p, "cross-rank mismatch")
        guarded = plan_of(
            [put(peer=Peer(-1, wrap=False), guard=NOT_FIRST_RANK), FENCE, BAR]
        )
        assert verify_plan(guarded, 4) == []

    def test_unfenced_put(self):
        self.assert_issue(plan_of([put()]), "no fence")

    def test_async_compute_without_wait(self):
        k = PlanOp(op_id="c", kind="compute", kernel=kern(), sync=False)
        self.assert_issue(plan_of([k, BAR]), "never waited")

    def test_wait_targets_non_async(self):
        k = PlanOp(op_id="c", kind="compute", kernel=kern())
        w = PlanOp(op_id="w", kind="wait", waits_for="c")
        self.assert_issue(plan_of([k, w, BAR]), "not an async compute")

    def test_multi_step_body_needs_terminal_barrier(self):
        k = PlanOp(op_id="c", kind="compute", kernel=kern())
        self.assert_issue(plan_of([k], steps=3), "end with a barrier")

    def test_one_sided_visibility_hazard(self):
        # A kernel reading the incoming-put range with no barrier in
        # between is the classic stencil race.
        k = PlanOp(
            op_id="c",
            kind="compute",
            kernel=kern(),
            reads=(Access(BufRef("X"), 512, 512),),
        )
        self.assert_issue(plan_of([put(), FENCE, k, BAR]), "visibility hazard")
        safe = plan_of([put(), FENCE, BAR, k, PlanOp(op_id="bar2", kind="barrier")])
        assert verify_plan(safe, 4) == []

    def test_prefetch_needs_asymmetric(self):
        pf = PlanOp(op_id="pf", kind="prefetch", prefetch_buf="X")
        self.assert_issue(plan_of([pf]), "asymmetric")

    def test_duplicates_and_malformed(self):
        dup_buf = CommPlan(
            name="t", steps=1, buffers=(BufDecl("X", 8), BufDecl("X", 8))
        )
        assert any("duplicate buffer" in i for i in verify_plan(dup_buf, 2))
        dup_op = plan_of([BAR, BAR])
        assert any("duplicate op id" in i for i in verify_plan(dup_op, 2))
        missing = plan_of([PlanOp(op_id="p", kind="put"), FENCE, BAR])
        assert any("needs peer" in i for i in verify_plan(missing, 2))
        bad_kind = plan_of([PlanOp(op_id="z", kind="scan")])
        assert any("unknown kind" in i for i in verify_plan(bad_kind, 2))

    def test_check_plan_raises_listing_everything(self):
        p = plan_of([put(src=Access(BufRef("GHOST"), 0, 8))])
        with pytest.raises(PlanVerificationError, match="dangling"):
            check_plan(p, 4)
        assert issubclass(PlanVerificationError, ConfigurationError)


class TestPasses:
    def halo_plan(self):
        spec = HaloSpec(
            buf=BufRef("X"),
            nplanes=3,
            plane_bytes=64,
            sides=(
                HaloSide(Peer(-1, wrap=False), NOT_FIRST_RANK, 256, 768),
                HaloSide(Peer(+1, wrap=False), NOT_LAST_RANK, 512, 0),
            ),
        )
        return plan_of(
            [
                PlanOp(op_id="halo", kind="halo", halo=spec),
                PlanOp(op_id="fence", kind="fence", after=("halo",)),
                BAR,
            ]
        )

    def test_expand_then_coalesce_round_trip(self):
        expanded, stats = expand_halo(self.halo_plan())
        assert stats["halo_expanded"] == 6
        puts = [op for op in expanded.body if op.kind == "put"]
        assert len(puts) == 6
        fence = next(op for op in expanded.body if op.kind == "fence")
        assert set(fence.after) == {op.op_id for op in puts}
        assert verify_plan(expanded, 4) == []

        merged, stats = coalesce_messages(expanded)
        assert stats["ops_coalesced"] == 4  # 3 planes -> 1 put, per side
        puts = [op for op in merged.body if op.kind == "put"]
        assert [(p.src.offset, p.src.nbytes) for p in puts] == [(256, 192), (512, 192)]
        fence = next(op for op in merged.body if op.kind == "fence")
        assert set(fence.after) == {p.op_id for p in puts}
        assert verify_plan(merged, 4) == []

    def test_coalesce_requires_contiguity(self):
        gap = plan_of(
            [
                put("a", src=Access(BufRef("X"), 0, 64), dst=Access(BufRef("X"), 512, 64)),
                put("b", src=Access(BufRef("X"), 128, 64), dst=Access(BufRef("X"), 576, 64)),
                FENCE,
                BAR,
            ]
        )
        merged, stats = coalesce_messages(gap)
        assert stats["ops_coalesced"] == 0
        assert len([op for op in merged.body if op.kind == "put"]) == 2

    def test_overlap_hoists_independent_kernel(self):
        decl = BufDecl("X", 1024, count=2, rotating=True)
        k = PlanOp(
            op_id="c",
            kind="compute",
            kernel=kern(),
            reads=(Access(BufRef("X", 0), 0, 1024),),
            writes=(),
        )
        p = plan_of(
            [
                put(src=Access(BufRef("X", 0), 0, 512), dst=Access(BufRef("X", 1), 0, 512)),
                FENCE,
                k,
                BAR,
            ],
            buffers=(decl,),
            steps=2,
        )
        out, stats = overlap_schedule(p)
        assert stats["computes_overlapped"] == 1
        ids = [op.op_id for op in out.body]
        assert ids == ["c", "p", "fence", "c.wait", "bar"]
        hoisted = out.body[0]
        assert not hoisted.sync and hoisted.stream == "aux"
        assert verify_plan(out, 4) == []

    def test_overlap_pins_kernels_touching_incoming_halo(self):
        # Reads the incoming range -> must not cross the barrier.
        k = PlanOp(
            op_id="c",
            kind="compute",
            kernel=kern(),
            reads=(Access(BufRef("X"), 512, 512),),
        )
        p = plan_of([put(), FENCE, BAR, k, PlanOp(op_id="bar2", kind="barrier")])
        out, _stats = overlap_schedule(p)
        ids = [op.op_id for op in out.body]
        assert ids.index("c") > ids.index("bar")

    def test_insert_prefetch_targets_asymmetric_rma(self):
        p = plan_of(
            [put(), FENCE, BAR],
            buffers=(BufDecl("X", 1024, kind="asymmetric"),),
        )
        out, stats = insert_prefetch(p)
        assert stats["prefetches_inserted"] == 1
        assert out.prologue[0].kind == "prefetch"
        assert out.meta["pointer_prefetch"] is True
        assert verify_plan(out, 4) == []
        again, stats2 = insert_prefetch(out)
        assert stats2["prefetches_inserted"] == 0

    def test_pipeline_idempotent(self):
        for build in (
            lambda: cannon_plan(CannonConfig(n=32, execute=False), 4),
            lambda: minimod_plan(MinimodConfig(nx=48, ny=8, nz=8, steps=5), 4),
            self.halo_plan,
        ):
            once, stats1 = optimize_plan(build())
            twice, stats2 = optimize_plan(once)
            assert twice.dump() == once.dump()
            assert pass_stats(twice) == pass_stats(once)
            # The second run performed no new rewrites.
            assert stats2 == stats1

    def test_optimized_app_plans_verify(self):
        cp, _ = optimize_plan(cannon_plan(CannonConfig(n=32), 4))
        assert verify_plan(cp, 4) == []
        ids = [op.op_id for op in cp.body]
        assert ids == ["gemm", "fwd", "fence", "gemm.wait", "bar"]
        mp, stats = optimize_plan(minimod_plan(MinimodConfig(nx=48, ny=8, nz=8, steps=5), 4))
        assert verify_plan(mp, 4) == []
        assert stats["halo_expanded"] == 8
        assert stats["ops_coalesced"] == 6
        assert stats["computes_overlapped"] == 3
        body_ids = [op.op_id for op in mp.body]
        assert body_ids[0] == "interior"  # hoisted above the puts
        assert body_ids[-1] == "bar"

    def test_explain_and_dump_render(self):
        text = explain_pipeline(minimod_plan(MinimodConfig(nx=48, ny=8, nz=8, steps=5), 4))
        assert "coalesce_messages" in text and "ops_coalesced=6" in text
        dump = cannon_plan(CannonConfig(n=32), 4).dump()
        assert "buffer %B : symmetric" in dump and "put %B" in dump


class TestCollectivePreselection:
    def coll_plan(self):
        return CommPlan(
            name="coll",
            steps=1,
            buffers=(BufDecl("S", 1024), BufDecl("R", 1024)),
            body=(
                PlanOp(
                    op_id="ar",
                    kind="allreduce",
                    coll=CollSpec(
                        send=Access(BufRef("S"), 0, 1024),
                        recv=Access(BufRef("R"), 0, 1024),
                        dtype="float64",
                    ),
                ),
                BAR,
            ),
        )

    def test_preselection_pins_algorithm(self):
        from repro.cluster import World
        from repro.hardware import platform_a
        from repro.xccl import params_for
        from repro.xccl.algorithms import select_sweep
        from repro.xccl.topo import analyze, build_ring

        world = World(platform_a(with_quirk=False), num_nodes=1)
        out, stats = preselect_collectives(self.coll_plan(), world=world)
        assert stats["collectives_preselected"] == 1
        algo = next(op for op in out.body if op.kind == "allreduce").algo
        params = params_for(world.platform.ccl)
        ring = build_ring([ctx.devices[0].device_id for ctx in world.ranks])
        ctopo = analyze(world.topology, ring, params)
        algos, _ = select_sweep("all_reduce", [1024], ctopo, params)
        assert algo == str(algos[0])

    def test_no_world_leaves_plan_unchanged(self):
        out, stats = preselect_collectives(self.coll_plan(), world=None)
        assert stats["collectives_preselected"] == 0
        assert next(op for op in out.body if op.kind == "allreduce").algo is None


class TestCli:
    def test_verbs_and_exit_codes(self, capsys):
        from repro.plan.__main__ import main

        assert main(["dump", "cannon", "--optimize"]) == 0
        assert "plan cannon" in capsys.readouterr().out
        assert main(["verify", "minimod", "--optimize", "--nranks", "4"]) == 0
        assert "OK" in capsys.readouterr().out
        assert main(["explain", "minimod"]) == 0
        assert "expand_halo" in capsys.readouterr().out
        with pytest.raises(SystemExit) as exc:
            main(["optimize", "cannon"])  # unknown verb -> usage error
        assert exc.value.code == 2
