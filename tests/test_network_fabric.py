"""Tests for the contended fabric transport model."""

import pytest

from repro.hardware import platform_a, platform_c
from repro.network import Fabric
from repro.sim import Simulator, Tracer
from repro.util.errors import CommunicationError
from repro.util.units import KiB, MiB


def make_fabric(nodes=2, platform=None, tracer=None):
    sim = Simulator()
    spec = platform or platform_a(with_quirk=False)
    topo = spec.cluster(nodes)
    return sim, topo, Fabric(sim, topo, tracer=tracer)


class TestUnloadedTransfers:
    def test_single_transfer_time_matches_alpha_beta(self):
        sim, topo, fab = make_fabric()
        src, dst = topo.gpu(0, 0), topo.gpu(1, 0)
        expected = fab.unloaded_time(src, dst, 1 * MiB)
        records = []

        def prog():
            fut = fab.transfer(src, dst, 1 * MiB)
            records.append(fut.wait())

        sim.spawn(prog)
        sim.run()
        assert sim.now == pytest.approx(expected)
        rec = records[0]
        assert rec.nbytes == 1 * MiB
        assert rec.duration == pytest.approx(expected)

    def test_zero_byte_transfer_costs_latency_only(self):
        sim, topo, fab = make_fabric()
        src, dst = topo.gpu(0, 0), topo.gpu(1, 0)

        def prog():
            fab.transfer(src, dst, 0).wait()

        sim.spawn(prog)
        sim.run()
        path = topo.path(src, dst)
        assert sim.now == pytest.approx(path.latency)

    def test_on_complete_runs_before_future(self):
        sim, topo, fab = make_fabric()
        order = []

        def prog():
            fut = fab.transfer(
                topo.gpu(0, 0),
                topo.gpu(1, 0),
                4 * KiB,
                on_complete=lambda: order.append("copy"),
            )
            fut.wait()
            order.append("woke")

        sim.spawn(prog)
        sim.run()
        assert order == ["copy", "woke"]

    def test_extra_latency_added(self):
        sim, topo, fab = make_fabric()
        src, dst = topo.gpu(0, 0), topo.gpu(1, 0)
        base = fab.unloaded_time(src, dst, 4 * KiB)

        def prog():
            fab.transfer(src, dst, 4 * KiB, extra_latency=5e-6).wait()

        sim.spawn(prog)
        sim.run()
        assert sim.now == pytest.approx(base + 5e-6)

    def test_negative_size_rejected(self):
        sim, topo, fab = make_fabric()

        def prog():
            fab.transfer(topo.gpu(0, 0), topo.gpu(1, 0), -1)

        sim.spawn(prog)
        with pytest.raises(CommunicationError):
            sim.run()


class TestContention:
    def test_same_nic_serializes(self):
        """Two concurrent transfers through one NIC take ~2x wire time."""
        sim, topo, fab = make_fabric(platform=platform_c())
        src, dst = topo.gpu(0, 0), topo.gpu(1, 0)
        size = 16 * MiB
        single = fab.unloaded_time(src, dst, size)
        ends = []

        def sender():
            fut1 = fab.transfer(src, dst, size)
            fut2 = fab.transfer(src, dst, size)
            fut1.wait()
            fut2.wait()
            ends.append(sim.now)

        sim.spawn(sender)
        sim.run()
        wire = size / topo.path(src, dst).bandwidth
        assert ends[0] == pytest.approx(single + wire)

    def test_distinct_nics_run_in_parallel(self):
        """GPUs striped over different NICs do not contend (Platform A
        has one NIC per GPU)."""
        sim, topo, fab = make_fabric()
        size = 16 * MiB
        src_a, dst_a = topo.gpu(0, 0), topo.gpu(1, 0)
        src_b, dst_b = topo.gpu(0, 1), topo.gpu(1, 1)
        single = fab.unloaded_time(src_a, dst_a, size)

        def sender():
            f1 = fab.transfer(src_a, dst_a, size)
            f2 = fab.transfer(src_b, dst_b, size)
            f1.wait()
            f2.wait()

        sim.spawn(sender)
        sim.run()
        assert sim.now == pytest.approx(single)

    def test_nvlink_pairs_independent(self):
        sim, topo, fab = make_fabric(nodes=1)
        size = 32 * MiB
        single = fab.unloaded_time(topo.gpu(0, 0), topo.gpu(0, 1), size)

        def prog():
            f1 = fab.transfer(topo.gpu(0, 0), topo.gpu(0, 1), size)
            f2 = fab.transfer(topo.gpu(0, 2), topo.gpu(0, 3), size)
            f1.wait()
            f2.wait()

        sim.spawn(prog)
        sim.run()
        assert sim.now == pytest.approx(single)


class TestAccounting:
    def test_statistics(self):
        sim, topo, fab = make_fabric()

        def prog():
            fab.transfer(topo.gpu(0, 0), topo.gpu(1, 0), 100).wait()
            fab.transfer(topo.gpu(0, 1), topo.gpu(1, 1), 200).wait()

        sim.spawn(prog)
        sim.run()
        assert fab.total_transfers == 2
        assert fab.total_bytes == 300

    def test_tracing(self):
        tracer = Tracer()
        sim, topo, fab = make_fabric(tracer=tracer)
        tracer.bind_clock(lambda: sim.now)

        def prog():
            fab.transfer(topo.gpu(0, 0), topo.gpu(1, 0), 4 * KiB).wait()

        sim.spawn(prog)
        sim.run()
        assert tracer.count("fabric", "transfer") == 1
        rec = tracer.last("fabric", "transfer")
        assert rec.payload["nbytes"] == 4 * KiB
        assert rec.payload["kind"] == "inter-node"

    def test_quirk_visible_in_achieved_bandwidth(self):
        from repro.hardware import platform_a as pa

        results = {}
        for quirk in (False, True):
            sim = Simulator()
            topo = pa(with_quirk=quirk).cluster(2)
            fab = Fabric(sim, topo)
            recs = []

            def prog():
                recs.append(
                    fab.transfer(
                        topo.gpu(0, 0), topo.gpu(1, 0), 64 * MiB, operation="put"
                    ).wait()
                )

            sim.spawn(prog)
            sim.run()
            results[quirk] = recs[0].achieved_bandwidth
        assert results[True] < 0.5 * results[False]
