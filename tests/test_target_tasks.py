"""Tests for deferred target tasks with dependences (§5 extension)."""

import numpy as np
import pytest

from repro.cluster import World, run_spmd
from repro.device.kernel import KernelCost
from repro.hardware import platform_a
from repro.omptarget import Map, MapType, OmpTargetRuntime, TargetTaskQueue
from repro.util.errors import ConfigurationError

COST = KernelCost(flops=1e9, bytes_moved=0.0)  # ~130 us on an A100


def world1():
    return World(platform_a(with_quirk=False), num_nodes=1)


def run_rank0(program):
    w = world1()

    def prog(ctx):
        if ctx.rank == 0:
            return program(ctx)

    return run_spmd(w, prog)


class TestIndependentTasks:
    def test_independent_tasks_overlap(self):
        """Two dependence-free target regions run concurrently on
        separate helper streams."""

        def program(ctx):
            rt = OmpTargetRuntime(ctx)
            q = TargetTaskQueue(rt)
            t0 = ctx.sim.now
            q.submit("a", COST)
            q.submit("b", COST)
            q.taskwait()
            return ctx.sim.now - t0

        res = run_rank0(program)
        one_kernel = COST.duration_on(platform_a().node.gpu)
        assert res.results[0] < 1.5 * one_kernel  # overlapped, not 2x

    def test_pending_counter(self):
        def program(ctx):
            rt = OmpTargetRuntime(ctx)
            q = TargetTaskQueue(rt)
            q.submit("a", COST)
            q.submit("b", COST)
            before = q.pending
            q.taskwait()
            return before, q.pending

        res = run_rank0(program)
        assert res.results[0] == (2, 0)


class TestDependences:
    def test_writer_then_reader_serializes(self):
        order = []

        def body_factory(tag):
            def body():
                order.append(tag)

            return body

        def program(ctx):
            rt = OmpTargetRuntime(ctx)
            q = TargetTaskQueue(rt)
            data = object()
            # body runs only with real maps; use completion order via
            # task futures instead.
            w = q.submit("writer", COST, depends_out=[data])
            r = q.submit("reader", KernelCost(flops=1e6, bytes_moved=0), depends_in=[data])
            r.wait()
            assert w.done()  # the writer must have finished first
            q.taskwait()

        run_rank0(program)

    def test_readers_run_concurrently_writer_waits(self):
        def program(ctx):
            rt = OmpTargetRuntime(ctx)
            q = TargetTaskQueue(rt)
            data = object()
            w1 = q.submit("w1", COST, depends_out=[data])
            r1 = q.submit("r1", COST, depends_in=[data])
            r2 = q.submit("r2", COST, depends_in=[data])
            w2 = q.submit("w2", COST, depends_out=[data])
            w2.wait()
            assert r1.done() and r2.done() and w1.done()
            q.taskwait()
            return ctx.sim.now

        res = run_rank0(program)
        one = COST.duration_on(platform_a().node.gpu)
        # Chain: w1 -> (r1 || r2) -> w2 = ~3 kernels, not 4.
        assert res.results[0] < 3.6 * one

    def test_diamond_dependences_compute_correctly(self):
        """A real diamond on mapped data: a writes, b and c read a and
        write their own, d reads b and c."""

        def program(ctx):
            rt = OmpTargetRuntime(ctx)
            q = TargetTaskQueue(rt)
            a = np.zeros(4)
            b = np.zeros(4)
            c = np.zeros(4)
            d = np.zeros(4)
            small = KernelCost(flops=1e6, bytes_moved=0)
            q.submit(
                "init",
                small,
                maps=[Map(a, MapType.TOFROM)],
                body=lambda va: va.__iadd__(1.0),
                depends_out=[a],
            )
            q.submit(
                "left",
                small,
                maps=[Map(a, MapType.TO), Map(b, MapType.FROM)],
                body=lambda va, vb: vb.__iadd__(va * 2),
                depends_in=[a],
                depends_out=[b],
            )
            q.submit(
                "right",
                small,
                maps=[Map(a, MapType.TO), Map(c, MapType.FROM)],
                body=lambda va, vc: vc.__iadd__(va * 3),
                depends_in=[a],
                depends_out=[c],
            )
            q.submit(
                "join",
                small,
                maps=[Map(b, MapType.TO), Map(c, MapType.TO), Map(d, MapType.FROM)],
                body=lambda vb, vc, vd: vd.__iadd__(vb + vc),
                depends_in=[b, c],
                depends_out=[d],
            )
            q.taskwait()
            return d.copy()

        res = run_rank0(program)
        np.testing.assert_allclose(res.results[0], 5.0)  # 2*1 + 3*1

    def test_in_and_out_same_object_rejected(self):
        def program(ctx):
            rt = OmpTargetRuntime(ctx)
            q = TargetTaskQueue(rt)
            data = object()
            q.submit("bad", COST, depends_in=[data], depends_out=[data])

        with pytest.raises(ConfigurationError, match="depend"):
            run_rank0(program)

    def test_program_order_between_writers(self):
        """Two writers to one object run strictly in submission order."""

        def program(ctx):
            rt = OmpTargetRuntime(ctx)
            q = TargetTaskQueue(rt)
            data = object()
            first = q.submit("first", COST, depends_out=[data])
            second = q.submit(
                "second", KernelCost(flops=1e6, bytes_moved=0), depends_out=[data]
            )
            second.wait()
            assert first.done()
            q.taskwait()

        run_rank0(program)
