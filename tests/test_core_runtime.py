"""Tests for the DiOMP runtime: segments, symmetric/asymmetric
allocation, RMA paths, fence, pointer cache."""

import numpy as np
import pytest

from repro.cluster import MemRef, World, run_spmd
from repro.core import Diomp, DiompParams, DiompRuntime
from repro.hardware import platform_a, platform_c
from repro.util.errors import CommunicationError, ConfigurationError
from repro.util.units import KiB, MiB


def make(nodes=2, platform=None, **kw):
    w = World(platform or platform_a(with_quirk=False), num_nodes=nodes)
    rt = DiompRuntime(w, DiompParams(**kw) if kw else None)
    return w, rt


class TestInit:
    def test_handles_installed_on_contexts(self):
        w, rt = make()
        assert all(isinstance(ctx.diomp, Diomp) for ctx in w.ranks)

    def test_one_segment_per_rank_device(self):
        w, rt = make(nodes=1)
        assert len(rt.segments) == 4
        for (rank, dev), seg in rt.segments.items():
            assert seg.registrations == 1

    def test_multi_device_rank_segments(self):
        w = World(platform_a(with_quirk=False), num_nodes=1, devices_per_rank=4)
        rt = DiompRuntime(w)
        assert len(rt.segments) == 4  # one rank, four devices
        assert rt.segment_of(0, 3) is rt.segments[(0, 3)]

    def test_gpi2_conduit_selected(self):
        w = World(platform_c(), num_nodes=2)
        rt = DiompRuntime(w, DiompParams(conduit="gpi2"))
        from repro.gpi2 import Gpi2Conduit

        assert isinstance(rt.conduit, Gpi2Conduit)

    def test_gpi2_rejected_on_slingshot(self):
        w = World(platform_a(), num_nodes=2)
        with pytest.raises(ConfigurationError, match="InfiniBand"):
            DiompRuntime(w, DiompParams(conduit="gpi2"))

    def test_unknown_conduit_rejected(self):
        w = World(platform_a(), num_nodes=1)
        with pytest.raises(ConfigurationError, match="conduit"):
            DiompRuntime(w, DiompParams(conduit="verbs"))


class TestSymmetricAlloc:
    def test_offsets_identical_across_ranks(self):
        w, rt = make()
        offsets = {}

        def prog(ctx):
            g1 = ctx.diomp.alloc(4 * KiB)
            g2 = ctx.diomp.alloc(8 * KiB)
            offsets[ctx.rank] = (g1.offset, g2.offset)

        run_spmd(w, prog)
        assert len(set(offsets.values())) == 1

    def test_size_mismatch_rejected(self):
        w, rt = make()

        def prog(ctx):
            ctx.diomp.alloc(4 * KiB if ctx.rank else 8 * KiB)

        with pytest.raises(CommunicationError, match="mismatch"):
            run_spmd(w, prog)

    def test_free_and_reuse_offset(self):
        w, rt = make(nodes=1)
        offsets = {}

        def prog(ctx):
            g1 = ctx.diomp.alloc(4 * KiB)
            first = g1.offset
            ctx.diomp.free(g1)
            g2 = ctx.diomp.alloc(4 * KiB)
            offsets[ctx.rank] = (first, g2.offset)

        run_spmd(w, prog)
        for first, second in offsets.values():
            assert first == second

    def test_buffer_usable_as_typed_array(self):
        w, rt = make(nodes=1)

        def prog(ctx):
            g = ctx.diomp.alloc(64)
            g.typed(np.float64)[:] = ctx.rank
            assert (g.typed(np.float64) == ctx.rank).all()

        run_spmd(w, prog)

    def test_buddy_allocator_option(self):
        w, rt = make(nodes=1, allocator="buddy")
        offsets = {}

        def prog(ctx):
            offsets[ctx.rank] = ctx.diomp.alloc(300).offset

        run_spmd(w, prog)
        assert len(set(offsets.values())) == 1


class TestRmaSymmetric:
    def test_inter_node_put_get(self):
        w, rt = make()
        seen = {}

        def prog(ctx):
            g = ctx.diomp.alloc(64)
            g.typed(np.float64)[:] = float(ctx.rank)
            ctx.diomp.barrier()
            if ctx.rank == 0:
                # put my data into rank 5 (other node) at offset 0
                ctx.diomp.put(5, g, g.memref())
                ctx.diomp.fence()
            ctx.diomp.barrier()
            seen[ctx.rank] = g.typed(np.float64)[0]

        run_spmd(w, prog)
        assert seen[5] == 0.0  # overwritten by rank 0
        assert seen[1] == 1.0  # untouched

    def test_get_fetches_remote(self):
        w, rt = make()
        out = {}

        def prog(ctx):
            g = ctx.diomp.alloc(64)
            g.typed(np.int64)[:] = ctx.rank * 11
            ctx.diomp.barrier()
            if ctx.rank == 2:
                dst = np.zeros(8, dtype=np.int64)
                ctx.diomp.get(7, g, MemRef.host(ctx.node, dst))
                ctx.diomp.fence()
                out["v"] = dst[0]
            ctx.diomp.barrier()

        run_spmd(w, prog)
        assert out["v"] == 77

    def test_put_with_target_offset(self):
        w, rt = make()
        bufs = {}

        def prog(ctx):
            g = ctx.diomp.alloc(128)
            bufs[ctx.rank] = g
            ctx.diomp.barrier()
            if ctx.rank == 0:
                src = np.full(4, 9.0)
                ctx.diomp.put(4, g, MemRef.host(ctx.node, src), target_offset=64)
                ctx.diomp.fence()
            ctx.diomp.barrier()

        run_spmd(w, prog)
        arr = bufs[4].typed(np.float64)
        assert arr[8] == 9.0 and arr[0] == 0.0

    def test_out_of_range_put_rejected(self):
        w, rt = make()

        def prog(ctx):
            g = ctx.diomp.alloc(64)
            if ctx.rank == 0:
                src = np.zeros(16)
                ctx.diomp.put(4, g, MemRef.host(ctx.node, src), target_offset=32)

        with pytest.raises(CommunicationError, match="exceeds buffer"):
            run_spmd(w, prog)

    def test_freed_buffer_rejected(self):
        w, rt = make(nodes=1)

        def prog(ctx):
            g = ctx.diomp.alloc(64)
            ctx.diomp.free(g)
            if ctx.rank == 0:
                ctx.diomp.put(1, g, MemRef.host(ctx.node, np.zeros(8)))

        with pytest.raises(CommunicationError, match="freed"):
            run_spmd(w, prog)


class TestHierarchicalPaths:
    def test_intra_node_avoids_nic(self):
        """Same-node RMA must not touch NIC resources (IPC path)."""
        w, rt = make(nodes=1)

        def prog(ctx):
            g = ctx.diomp.alloc(1 * MiB, virtual=True)
            ctx.diomp.barrier()
            if ctx.rank == 0:
                ctx.diomp.put(1, g, g.memref())
                ctx.diomp.fence()
            ctx.diomp.barrier()

        run_spmd(w, prog)
        fab = w.fabric
        assert fab.resource_busy_until("node0/nic0/tx") == 0.0
        assert fab.resource_busy_until("node0/nic0/rx") == 0.0
        assert fab.resource_busy_until("node0/gpu0->gpu1") > 0.0

    def test_intra_node_faster_than_inter_node(self):
        def put_time(nodes, dst_rank):
            w, rt = make(nodes=nodes)

            def prog(ctx):
                g = ctx.diomp.alloc(4 * MiB, virtual=True)
                ctx.diomp.barrier()
                elapsed = None
                if ctx.rank == 0:
                    # Warm up (one-time IPC handle open / path setup).
                    ctx.diomp.put(dst_rank, g, g.memref())
                    ctx.diomp.fence()
                    t0 = ctx.sim.now
                    ctx.diomp.put(dst_rank, g, g.memref())
                    ctx.diomp.fence()
                    elapsed = ctx.sim.now - t0
                ctx.diomp.barrier()
                return elapsed

            return run_spmd(w, prog).results[0]

        assert put_time(1, 1) < put_time(2, 4)

    def test_ipc_open_charged_once(self):
        w, rt = make(nodes=1)
        stats = {}

        def prog(ctx):
            g = ctx.diomp.alloc(4 * KiB, virtual=True)
            ctx.diomp.barrier()
            if ctx.rank == 0:
                for _ in range(5):
                    ctx.diomp.put(1, g, g.memref())
                ctx.diomp.fence()
                stats["opens"] = ctx.diomp.rma.ipc_opens
                stats["puts"] = ctx.diomp.rma.puts
            ctx.diomp.barrier()

        run_spmd(w, prog)
        assert stats == {"opens": 1, "puts": 5}

    def test_same_process_multi_gpu_uses_peer_access(self):
        w = World(platform_a(with_quirk=False), num_nodes=1, devices_per_rank=2)
        DiompRuntime(w)
        enabled = {}

        def prog(ctx):
            g0 = ctx.diomp.alloc(4 * KiB, device_num=0, virtual=True)
            g1 = ctx.diomp.alloc(4 * KiB, device_num=1, virtual=True)
            ctx.diomp.barrier()
            if ctx.rank == 0:
                # put from my device 0 into my own rank's device-1 buffer
                ctx.diomp.put(0, g1, g0.memref(), device_num=1)
                ctx.diomp.fence()
                enabled["peer"] = w.peer_access.is_enabled(
                    ctx.devices[0].device_id, ctx.devices[1].device_id
                )
            ctx.diomp.barrier()

        run_spmd(w, prog)
        assert enabled["peer"]


class TestFence:
    def test_fence_completes_all_pending(self):
        w, rt = make()
        stats = {}

        def prog(ctx):
            g = ctx.diomp.alloc(256 * KiB, virtual=True)
            ctx.diomp.barrier()
            if ctx.rank == 0:
                for i in range(8):
                    ctx.diomp.put(4, g, g.memref())
                assert ctx.diomp.rma.pending_ops > 0
                ctx.diomp.fence()
                stats["pending_after"] = ctx.diomp.rma.pending_ops
            ctx.diomp.barrier()

        run_spmd(w, prog)
        assert stats["pending_after"] == 0

    def test_data_visible_only_after_fence_barrier(self):
        w, rt = make()
        order = {}

        def prog(ctx):
            g = ctx.diomp.alloc(8 * MiB)
            ctx.diomp.barrier()
            if ctx.rank == 0:
                g.typed(np.uint8)[:] = 1
                ctx.diomp.put(4, g, g.memref())
                ctx.diomp.fence()
            ctx.diomp.barrier()
            if ctx.rank == 4:
                order["sum"] = int(g.typed(np.uint8).sum())

        run_spmd(w, prog)
        assert order["sum"] == 8 * MiB

    def test_fence_drains_every_device_pool(self):
        """Regression: intra-node RMA from a non-primary device enqueues
        onto *that* device's pool; a fence called for device 0 used to
        drain only ``stream_pool(0)`` and return with the other pool's
        streams still in flight."""
        w = World(platform_a(with_quirk=False), num_nodes=1, devices_per_rank=4)
        DiompRuntime(w)
        out = {}

        def prog(ctx):
            if ctx.rank != 0:
                return
            slow = 5e-3
            other = ctx.diomp.stream_pool(1)
            other.acquire().enqueue(slow)
            ctx.diomp.stream_pool(0).acquire().enqueue(1e-5)
            ctx.diomp.fence()  # device_num defaults to 0
            out["t"] = ctx.sim.now
            out["busy"] = {
                num: pool.active_count
                for num, pool in ctx.diomp.stream_pools().items()
            }

        run_spmd(w, prog)
        assert out["t"] >= 5e-3  # waited for device 1's stream too
        assert set(out["busy"]) == {0, 1}

    def test_intra_node_put_from_second_device_completed_by_fence(self):
        """End-to-end variant: a p2p put whose source lives on device 1
        must be fully visible after a default fence."""
        w = World(platform_a(with_quirk=False), num_nodes=1, devices_per_rank=2)
        DiompRuntime(w)
        out = {}

        def prog(ctx):
            g = ctx.diomp.alloc(64)
            ctx.diomp.barrier()
            if ctx.rank == 0:
                src_buf = ctx.devices[1].malloc(64)
                src_buf.as_array(np.uint8)[:] = 7
                ctx.diomp.put(0, g, MemRef.device(src_buf))
                ctx.diomp.fence()
                out["sum"] = int(g.typed(np.uint8).sum())
            ctx.diomp.barrier()

        run_spmd(w, prog)
        assert out["sum"] == 64 * 7


class TestAsymmetric:
    def test_differing_sizes_allocated(self):
        w, rt = make()
        out = {}

        def prog(ctx):
            a = ctx.diomp.alloc_asymmetric((ctx.rank + 1) * 1024)
            out[ctx.rank] = (a.size, a.slot_offset)

        run_spmd(w, prog)
        sizes = {r: s for r, (s, _) in out.items()}
        slots = {slot for _, slot in out.values()}
        assert sizes[0] == 1024 and sizes[7] == 8 * 1024
        assert len(slots) == 1  # wrapper slot is symmetric

    def test_remote_access_two_step_then_cached(self):
        w, rt = make()
        stats = {}

        def prog(ctx):
            a = ctx.diomp.alloc_asymmetric((ctx.rank + 1) * 1024)
            if a.data is not None:
                a.typed(np.uint8)[:] = ctx.rank
            ctx.diomp.barrier()
            if ctx.rank == 0:
                dst = np.zeros(2048, dtype=np.uint8)
                ctx.diomp.get(5, a, MemRef.host(ctx.node, dst))
                ctx.diomp.fence()
                first_fetches = ctx.diomp.rma.pointer_fetches
                ctx.diomp.get(5, a, MemRef.host(ctx.node, dst))
                ctx.diomp.fence()
                stats["fetches"] = (first_fetches, ctx.diomp.rma.pointer_fetches)
                stats["data"] = dst[0]
                stats["cache"] = (
                    ctx.diomp.pointer_cache.hits,
                    ctx.diomp.pointer_cache.misses,
                )
            ctx.diomp.barrier()

        run_spmd(w, prog)
        assert stats["fetches"] == (1, 1)  # second access: cache hit
        assert stats["data"] == 5
        assert stats["cache"] == (1, 1)

    def test_cache_disabled_refetches(self):
        w, rt = make(pointer_cache=False)
        stats = {}

        def prog(ctx):
            a = ctx.diomp.alloc_asymmetric(1024)
            ctx.diomp.barrier()
            if ctx.rank == 0:
                dst = np.zeros(64, dtype=np.uint8)
                for _ in range(3):
                    ctx.diomp.get(4, a, MemRef.host(ctx.node, dst))
                    ctx.diomp.fence()
                stats["fetches"] = ctx.diomp.rma.pointer_fetches
            ctx.diomp.barrier()

        run_spmd(w, prog)
        assert stats["fetches"] == 3

    def test_free_invalidates_caches(self):
        w, rt = make()
        stats = {}

        def prog(ctx):
            a = ctx.diomp.alloc_asymmetric(1024)
            ctx.diomp.barrier()
            if ctx.rank == 0:
                dst = np.zeros(64, dtype=np.uint8)
                ctx.diomp.get(4, a, MemRef.host(ctx.node, dst))
                ctx.diomp.fence()
                stats["before"] = len(ctx.diomp.pointer_cache)
            ctx.diomp.barrier()
            ctx.diomp.free_asymmetric(a)
            if ctx.rank == 0:
                stats["after"] = len(ctx.diomp.pointer_cache)

        run_spmd(w, prog)
        assert stats == {"before": 1, "after": 0}

    def test_zero_byte_rank_allowed(self):
        w, rt = make(nodes=1)

        def prog(ctx):
            a = ctx.diomp.alloc_asymmetric(1024 if ctx.rank == 0 else 0)
            if ctx.rank == 0:
                assert a.data is not None
            else:
                assert a.data is None
                with pytest.raises(Exception):
                    a.memref()

        run_spmd(w, prog)

    def test_rma_beyond_remote_size_rejected(self):
        w, rt = make(nodes=1)

        def prog(ctx):
            a = ctx.diomp.alloc_asymmetric(64 if ctx.rank == 0 else 32)
            ctx.diomp.barrier()
            if ctx.rank == 1:
                dst = np.zeros(64, dtype=np.uint8)
                ctx.diomp.get(0, a, MemRef.host(ctx.node, dst))  # ok: rank0 has 64
                ctx.diomp.fence()
            if ctx.rank == 0:
                dst = np.zeros(64, dtype=np.uint8)
                ctx.diomp.get(1, a, MemRef.host(ctx.node, dst))  # rank1 only has 32

        with pytest.raises(CommunicationError, match="asymmetric block"):
            run_spmd(w, prog)

    def test_typed_after_free_rejected(self):
        """Use-after-free: typed views of a freed buffer must fail
        loudly, not silently alias released memory."""
        from repro.util.errors import AllocationError

        w, rt = make(nodes=1)

        def prog(ctx):
            a = ctx.diomp.alloc_asymmetric(256)
            ctx.diomp.barrier()
            view = a.typed(np.uint8)  # fine before the free
            assert view.size == 256
            ctx.diomp.free_asymmetric(a)
            with pytest.raises(AllocationError, match="freed"):
                a.typed(np.uint8)

        run_spmd(w, prog)

    def test_rma_to_null_second_level_pointer_rejected(self):
        """A rank that allocated zero bytes publishes a NULL data
        pointer; even a zero-byte RMA to it must be rejected instead of
        fabricating address 0 + offset."""
        w, rt = make(nodes=1)

        def prog(ctx):
            a = ctx.diomp.alloc_asymmetric(64 if ctx.rank == 0 else 0)
            ctx.diomp.barrier()
            if ctx.rank == 0:
                dst = np.zeros(0, dtype=np.uint8)
                ctx.diomp.get(1, a, MemRef.host(ctx.node, dst))

        with pytest.raises(CommunicationError, match="no data block"):
            run_spmd(w, prog)


class TestOmpTargetIntegration:
    def test_mapped_data_lands_in_segment(self):
        w, rt = make(nodes=1)
        out = {}

        def prog(ctx):
            from repro.omptarget import Map, MapType

            if ctx.rank != 0:
                return
            arr = np.arange(16, dtype=np.float64)
            ctx.diomp.omp.target_enter_data([Map(arr, MapType.TO)])
            seg = ctx.diomp.segment(0)
            addr = ctx.diomp.omp.use_device_ptr(arr)
            out["in_segment"] = seg.base <= addr < seg.base + seg.size
            out["avoided"] = ctx.diomp.plugin.registrations_avoided

        run_spmd(w, prog)
        assert out["in_segment"]
        assert out["avoided"] == 1

    def test_mapped_data_remotely_accessible(self):
        """The Fig. 1b zero-copy property: another rank can ompx_get
        OpenMP-mapped memory directly, no extra registration."""
        w, rt = make(nodes=1)
        out = {}
        addr_box = {}

        def prog(ctx):
            from repro.omptarget import Map, MapType

            arr = np.full(8, float(ctx.rank + 1))
            ctx.diomp.omp.target_enter_data([Map(arr, MapType.TO)])
            if ctx.rank == 1:
                addr_box["addr"] = ctx.diomp.omp.use_device_ptr(arr)
            ctx.diomp.barrier()
            if ctx.rank == 0:
                dst = np.zeros(8)
                ctx.diomp.get(1, addr_box["addr"], MemRef.host(ctx.node, dst))
                ctx.diomp.fence()
                out["v"] = dst[0]
            ctx.diomp.barrier()

        run_spmd(w, prog)
        assert out["v"] == 2.0


class TestGroupScopedBarrier:
    def test_sub_group_barrier_spares_non_member_ops(self):
        """Regression: ``ompx_barrier(group)`` used to call ``fence()``
        with no group, draining every pending op — including a slow
        transfer to a rank outside the group — before releasing the
        barrier.  The scoped fence must leave non-member ops pending."""
        w, rt = make(segment_size=128 * MiB)
        out = {}

        def prog(ctx):
            big = ctx.diomp.alloc(32 * MiB, virtual=True)
            small = ctx.diomp.alloc(64, virtual=True)
            ctx.diomp.barrier()
            if ctx.rank < 4:
                sub = ctx.diomp.group_create([0, 1, 2, 3])
                if ctx.rank == 0:
                    # Slow inter-node put to a NON-member (rank 4) plus a
                    # small put to a member: only the latter is barrier
                    # scope.
                    ctx.diomp.put(4, big, big.memref())
                    ctx.diomp.put(1, small, small.memref())
                    assert ctx.diomp.rma.pending_ops == 2
                t0 = ctx.sim.now
                ctx.diomp.barrier(sub)
                if ctx.rank == 0:
                    out["barrier_time"] = ctx.sim.now - t0
                    out["pending_after_sub"] = ctx.diomp.rma.pending_ops
                    ctx.diomp.fence()  # full fence before shutdown
                    out["pending_after_full"] = ctx.diomp.rma.pending_ops
            ctx.world.global_barrier.wait()

        run_spmd(w, prog)
        # The 32 MiB transfer to rank 4 survived the sub-group barrier...
        assert out["pending_after_sub"] == 1
        # ...and the barrier did not wait out its ~ms wire time.
        assert out["barrier_time"] < 1e-3
        assert out["pending_after_full"] == 0

    def test_world_barrier_still_drains_everything(self):
        w, rt = make()
        out = {}

        def prog(ctx):
            g = ctx.diomp.alloc(64 * KiB, virtual=True)
            ctx.diomp.barrier()
            if ctx.rank == 0:
                ctx.diomp.put(4, g, g.memref())
            ctx.diomp.barrier()
            if ctx.rank == 0:
                out["pending"] = ctx.diomp.rma.pending_ops

        run_spmd(w, prog)
        assert out["pending"] == 0
