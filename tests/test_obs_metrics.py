"""Tests for the metrics registry and its runtime integration."""

import numpy as np
import pytest

from repro.cluster import MemRef, World, run_spmd
from repro.core import DiompParams, DiompRuntime
from repro.hardware import platform_a
from repro.obs import Observability, size_class
from repro.obs.metrics import DEFAULT_BOUNDS, MetricsRegistry
from repro.util.errors import ConfigurationError


class TestCounter:
    def test_inc_and_aggregate(self):
        reg = MetricsRegistry()
        c = reg.counter("rma.ops", "ops")
        c.inc(op="put", rank=0)
        c.inc(op="put", rank=1)
        c.inc(3, op="get", rank=0)
        assert c.value(op="put") == 2
        assert c.value(rank=0) == 4
        assert c.value() == 5
        assert c.value(op="put", rank=1) == 1
        assert c.value(op="cas") == 0

    def test_labels_stringified(self):
        reg = MetricsRegistry()
        c = reg.counter("c")
        c.inc(rank=3)
        c.inc(rank="3")
        assert c.value(rank=3) == 2
        assert c.value(rank="3") == 2

    def test_negative_increment_rejected(self):
        c = MetricsRegistry().counter("c")
        with pytest.raises(ConfigurationError, match="negative"):
            c.inc(-1)

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("c", "help text").inc(2.5, rank=0)
        snap = reg.snapshot()
        assert snap["counters"]["c"]["help"] == "help text"
        assert snap["counters"]["c"]["series"] == [
            {"labels": {"rank": "0"}, "value": 2.5}
        ]


class TestGauge:
    def test_set_add_and_high_water(self):
        g = MetricsRegistry().gauge("occupancy")
        g.set(10, rank=0)
        g.set(30, rank=0)
        g.set(20, rank=0)
        assert g.value(rank=0) == 20
        assert g.high_water(rank=0) == 30
        g.add(5, rank=0)
        assert g.value(rank=0) == 25

    def test_aggregates_across_series(self):
        g = MetricsRegistry().gauge("occupancy")
        g.set(10, rank=0)
        g.set(15, rank=1)
        assert g.value() == 25
        assert g.high_water() == 15

    def test_unseen_high_water_zero(self):
        g = MetricsRegistry().gauge("g")
        assert g.high_water(rank=9) == 0.0


class TestHistogram:
    def test_stats_and_buckets(self):
        h = MetricsRegistry().histogram("iters", bounds=(1, 2, 4))
        for v in (0, 1, 2, 3, 100):
            h.observe(v, rank=0)
        s = h.stats(rank=0)
        assert s.count == 5
        assert s.minimum == 0 and s.maximum == 100
        assert s.mean == pytest.approx(21.2)
        # buckets: <=1, <=2, <=4, overflow
        assert s.buckets == [2, 1, 1, 1]

    def test_merge_across_ranks(self):
        h = MetricsRegistry().histogram("iters", bounds=(1, 2))
        h.observe(1, rank=0)
        h.observe(5, rank=1)
        s = h.stats()
        assert s.count == 2 and s.maximum == 5
        assert h.count(rank=1) == 1

    def test_default_bounds_and_sorted_check(self):
        reg = MetricsRegistry()
        assert reg.histogram("h").bounds == DEFAULT_BOUNDS
        with pytest.raises(ConfigurationError, match="sorted"):
            reg.histogram("bad", bounds=(4, 2))


class TestPercentiles:
    def make(self):
        h = MetricsRegistry().histogram("h", bounds=(1, 2, 4))
        for v in (0, 1, 2, 3, 100):
            h.observe(v, rank=0)
        return h

    def test_interpolated_quantiles(self):
        h = self.make()
        s = h.stats()
        # buckets [2, 1, 1, 1]; p50 rank 2.5 falls in the (1, 2] bucket
        assert s.percentile(0.50, h.bounds) == pytest.approx(1.5)
        # p99 rank 4.95 falls in the overflow bucket, anchored at max
        assert s.percentile(0.99, h.bounds) == pytest.approx(95.2)

    def test_extremes_anchor_at_min_max(self):
        h = self.make()
        s = h.stats()
        assert s.percentile(0.0, h.bounds) == s.minimum
        assert s.percentile(1.0, h.bounds) == s.maximum

    def test_empty_is_zero(self):
        h = MetricsRegistry().histogram("h")
        from repro.obs.metrics import HistogramStats

        assert HistogramStats().percentile(0.5, h.bounds) == 0.0

    def test_out_of_range_q_rejected(self):
        h = self.make()
        with pytest.raises(ConfigurationError, match="percentile"):
            h.stats().percentile(1.5, h.bounds)

    def test_snapshot_carries_quantiles(self):
        h = self.make()
        (entry,) = h.snapshot()
        assert {"p50", "p95", "p99"} <= set(entry)
        assert entry["p50"] == pytest.approx(1.5)


class TestCardinalityGuard:
    def test_counter_drops_series_beyond_cap(self):
        reg = MetricsRegistry(max_series_per_metric=2)
        c = reg.counter("c")
        c.inc(rank=0)
        c.inc(rank=1)
        with pytest.warns(RuntimeWarning, match="cardinality"):
            c.inc(rank=2)
        assert c.value() == 2
        assert c.value(rank=2) == 0
        assert reg.dropped_series == 1
        # Existing series still admit new observations.
        c.inc(rank=0)
        assert c.value(rank=0) == 2

    def test_warns_only_once_per_metric(self):
        import warnings

        reg = MetricsRegistry(max_series_per_metric=1)
        c = reg.counter("c")
        c.inc(rank=0)
        with pytest.warns(RuntimeWarning):
            c.inc(rank=1)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            c.inc(rank=2)  # silent: warned already
        assert reg.dropped_series == 2

    def test_gauge_and_histogram_guarded(self):
        reg = MetricsRegistry(max_series_per_metric=1)
        g = reg.gauge("g")
        h = reg.histogram("h")
        g.set(5, rank=0)
        h.observe(1, rank=0)
        with pytest.warns(RuntimeWarning):
            g.set(7, rank=1)
        with pytest.warns(RuntimeWarning):
            h.observe(2, rank=1)
        assert g.value() == 5
        assert h.count() == 1
        assert reg.dropped_series == 2

    def test_invalid_cap_rejected(self):
        with pytest.raises(ConfigurationError, match="max_series_per_metric"):
            MetricsRegistry(max_series_per_metric=0)


class TestRegistry:
    def test_get_or_create_same_object(self):
        reg = MetricsRegistry()
        assert reg.counter("c") is reg.counter("c")

    def test_kind_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ConfigurationError, match="already registered"):
            reg.gauge("x")

    def test_value_of_absent_family(self):
        assert MetricsRegistry().value("nope", rank=0) == 0.0

    def test_contains_and_iter(self):
        reg = MetricsRegistry()
        reg.counter("b")
        reg.gauge("a")
        assert "a" in reg and "c" not in reg
        assert [m.name for m in reg] == ["a", "b"]

    def test_disabled_registry_records_nothing(self):
        reg = MetricsRegistry(enabled=False)
        c = reg.counter("c")
        g = reg.gauge("g")
        h = reg.histogram("h")
        c.inc(rank=0)
        g.set(5, rank=0)
        h.observe(1, rank=0)
        assert c.value() == 0
        assert g.value() == 0
        assert h.count() == 0


class TestSizeClass:
    def test_boundaries(self):
        assert size_class(0) == "<4KiB"
        assert size_class(4 * 1024 - 1) == "<4KiB"
        assert size_class(4 * 1024) == "<64KiB"
        assert size_class(1024 * 1024) == "<4MiB"
        assert size_class(64 * 1024 * 1024) == ">=4MiB"


# ---------------------------------------------------------------------------
# Integration with the runtime
# ---------------------------------------------------------------------------


def make(nodes=2, ranks_per_node=None, obs=None, **kw):
    w = World(
        platform_a(with_quirk=False),
        num_nodes=nodes,
        ranks_per_node=ranks_per_node,
        obs=obs,
    )
    rt = DiompRuntime(w, DiompParams(**kw) if kw else None)
    return w, rt


def ring_put(ctx, nbytes=8192):
    d = ctx.diomp
    buf = d.alloc(nbytes)
    right = (ctx.rank + 1) % ctx.nranks
    d.barrier()
    d.put(right, buf, buf.memref())
    d.fence()
    d.barrier()


class TestRuntimeIntegration:
    def test_per_path_bytes(self):
        # 2 nodes x 2 ranks: ring neighbours alternate conduit / IPC.
        w, rt = make(nodes=2, ranks_per_node=2)
        run_spmd(w, ring_put)
        reg = w.obs.registry
        assert reg.value("rma.ops", path="conduit") == 2
        assert reg.value("rma.ops", path="ipc") == 2
        assert reg.value("rma.bytes", path="conduit") == 2 * 8192
        assert reg.value("rma.bytes", path="ipc") == 2 * 8192
        assert reg.value("rma.bytes") == 4 * 8192

    def test_legacy_stats_read_registry(self):
        w, rt = make(nodes=2, ranks_per_node=2)
        run_spmd(w, ring_put)
        for ctx in w.ranks:
            assert ctx.diomp.rma.puts == 1
            assert ctx.diomp.rma.gets == 0

    def test_pointer_cache_hit_rate(self):
        w, rt = make()
        def prog(ctx):
            d = ctx.diomp
            a = d.alloc_asymmetric((ctx.rank + 1) * 1024)
            d.barrier()
            if ctx.rank == 0:
                dst = np.zeros(2048, dtype=np.uint8)
                for _ in range(3):
                    d.get(5, a, MemRef.host(ctx.node, dst))
                    d.fence()
            d.barrier()
            d.free_asymmetric(a)

        run_spmd(w, prog)
        reg = w.obs.registry
        assert reg.value("rma.pointer_cache", event="miss") == 1
        assert reg.value("rma.pointer_cache", event="hit") == 2

    def test_stream_pool_gauge_high_water(self):
        w, rt = make(nodes=2, ranks_per_node=2)
        run_spmd(w, ring_put)
        gauge = w.obs.registry.gauge("streams.active")
        assert gauge.high_water() >= 1

    def test_conduit_counters_by_size_class(self):
        w, rt = make(nodes=2, ranks_per_node=2)
        run_spmd(w, ring_put)
        reg = w.obs.registry
        # the two inter-node puts travel the GASNet conduit
        assert reg.value(
            "conduit.messages", conduit="gasnet", op="put", size_class="<64KiB"
        ) == 2
        assert reg.value("conduit.bytes", conduit="gasnet", op="put") == 2 * 8192

    def test_collective_counters(self):
        w, rt = make(nodes=2, ranks_per_node=2)

        def prog(ctx):
            d = ctx.diomp
            buf = d.alloc(1024)
            d.barrier()
            d.bcast(buf)
            d.barrier()

        run_spmd(w, prog)
        reg = w.obs.registry
        assert reg.value("ompccl.collectives", kind="bcast") == w.nranks
        assert reg.value("ompccl.bytes", kind="bcast") == w.nranks * 1024
        # one xccl device-slot launch per rank underneath
        assert reg.value("xccl.launches", op="broadcast") == w.nranks

    def test_segment_occupancy_gauge(self):
        w, rt = make()

        def prog(ctx):
            ctx.diomp.alloc(4096)
            ctx.diomp.barrier()

        run_spmd(w, prog)
        gauge = w.obs.registry.gauge("segment.occupancy_bytes")
        assert gauge.value(rank=0, region="symmetric") >= 4096

    def test_disabled_world_records_nothing(self):
        w, rt = make(obs=Observability(enabled=False))
        run_spmd(w, ring_put)
        reg = w.obs.registry
        assert reg.value("rma.ops") == 0
        assert len(w.obs.spans) == 0
        # legacy properties degrade to zero rather than raising
        assert w.ranks[0].diomp.rma.puts == 0

    def test_spmd_result_carries_snapshot(self):
        w, rt = make()
        res = run_spmd(w, ring_put)
        assert res.metrics is not None
        assert "rma.ops" in res.metrics["counters"]

    def test_spmd_result_metrics_none_when_disabled(self):
        w, rt = make(obs=Observability(enabled=False))
        res = run_spmd(w, ring_put)
        assert res.metrics is None


class TestPercentileEdgeCases:
    """S2 hardening: degenerate series and boundary q values."""

    def test_nan_q_rejected(self):
        h = MetricsRegistry().histogram("h")
        h.observe(1.0)
        with pytest.raises(ConfigurationError, match="percentile"):
            h.stats().percentile(float("nan"), h.bounds)

    def test_negative_q_rejected(self):
        h = MetricsRegistry().histogram("h")
        h.observe(1.0)
        with pytest.raises(ConfigurationError, match="percentile"):
            h.stats().percentile(-0.01, h.bounds)

    def test_single_observation_every_q(self):
        h = MetricsRegistry().histogram("h", bounds=(1, 10, 100))
        h.observe(7.0)
        for q in (0.0, 0.25, 0.5, 0.99, 1.0):
            assert h.stats().percentile(q, h.bounds) == 7.0

    def test_constant_series_every_q(self):
        h = MetricsRegistry().histogram("h", bounds=(1, 10, 100))
        for _ in range(10):
            h.observe(42.0)
        for q in (0.0, 0.5, 1.0):
            assert h.stats().percentile(q, h.bounds) == 42.0

    def test_extreme_q_exact_not_estimated(self):
        h = MetricsRegistry().histogram("h", bounds=(1, 10, 100))
        for v in (0.5, 3.0, 55.0, 700.0):
            h.observe(v)
        assert h.stats().percentile(0.0, h.bounds) == 0.5
        assert h.stats().percentile(1.0, h.bounds) == 700.0

    def test_estimates_clamped_to_observed_range(self):
        h = MetricsRegistry().histogram("h", bounds=(1, 10, 100))
        for v in (2.0, 3.0, 4.0, 5.0):
            h.observe(v)
        for q in (0.01, 0.5, 0.99):
            est = h.stats().percentile(q, h.bounds)
            assert 2.0 <= est <= 5.0


class TestRegistryHealth:
    def test_series_counts_and_totals(self):
        reg = MetricsRegistry()
        c = reg.counter("a")
        c.inc(rank=0)
        c.inc(rank=1)
        reg.gauge("b").set(1.0)
        health = reg.health()
        assert health["families"]["a"]["series"] == 2
        assert health["families"]["b"]["series"] == 1
        assert health["total_series"] == 3
        assert health["dropped_series"] == 0
        assert not health["families"]["a"]["overflowed"]
        assert c.series_count() == 2

    def test_overflow_surfaces_in_health_and_snapshot(self):
        import warnings

        reg = MetricsRegistry(max_series_per_metric=2)
        c = reg.counter("a")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            for r in range(5):
                c.inc(rank=r)
        health = reg.health()
        assert health["dropped_series"] == 3
        assert health["families"]["a"]["overflowed"]
        snap = reg.snapshot()
        assert snap["health"]["dropped_series"] == 3
        assert snap["counters"]["a"]["series_count"] == 2
        assert snap["counters"]["a"]["overflowed"]
