"""The telemetry pipeline at 256 simulated ranks, plus the report CLI.

S4 of the streaming-telemetry issue: at 256 ranks the span store must
hold its memory budget while sampling, and the cross-rank rollups must
match the exact per-rank series still present in the registry (the cap
is 1000 series, so nothing is dropped at this scale and the rollup can
be checked value-for-value).
"""

import json

import pytest

from repro.cluster import World, run_spmd
from repro.cluster.spmd import SpmdConfig, TelemetryConfig
from repro.core import DiompRuntime
from repro.hardware import platform_a
from repro.obs.rollup import exact_percentile
from repro.obs.sampling import SPAN_COST_BYTES, SpanBudget
from repro.util.units import KiB

#: 64 nodes x 4 GPUs = 256 ranks
SCALE_NODES = 64
SCALE_RANKS = 256


@pytest.fixture(scope="module")
def scale_run():
    """One 256-rank allreduce run with a tight span budget (module-
    scoped: the run costs about a second, the assertions are many)."""
    budget = SpanBudget(
        max_bytes=256 * SPAN_COST_BYTES, per_track_head=1, per_track_reservoir=2
    )
    world = World(platform_a(), num_nodes=SCALE_NODES)
    DiompRuntime(world)

    def prog(ctx):
        send = ctx.diomp.alloc(16 * KiB, virtual=True)
        recv = ctx.diomp.alloc(16 * KiB, virtual=True)
        ctx.diomp.barrier()
        ctx.diomp.allreduce(send, recv)
        ctx.diomp.barrier()
        return ctx.rank

    config = SpmdConfig(
        telemetry=TelemetryConfig(span_budget=budget, rollups=True, anomalies=True)
    )
    result = run_spmd(world, prog, config=config)
    return world, result, budget


class TestSpanBudgetAtScale:
    def test_all_ranks_ran(self, scale_run):
        _, result, _ = scale_run
        assert result.results == list(range(SCALE_RANKS))

    def test_memory_budget_held(self, scale_run):
        world, _, budget = scale_run
        stats = world.obs.span_stats()
        assert stats.sampling  # 256 ranks overflow a 256-span budget
        assert stats.kept <= budget.max_spans
        assert stats.memory_bytes <= budget.max_bytes
        assert stats.recorded == stats.kept + stats.dropped
        assert stats.recorded > budget.max_spans

    def test_engine_numbers_published(self, scale_run):
        world, _, _ = scale_run
        assert world.obs.value("sim.events") == world.obs.engine.events
        assert world.obs.value("sim.events_per_sec") > 0
        assert world.obs.value("sim.wall_per_simsec") > 0


class TestRollupsAtScale:
    def test_no_series_dropped_at_256(self, scale_run):
        world, _, _ = scale_run
        assert world.obs.registry.dropped_series == 0

    def test_rollups_match_exact_per_rank_values(self, scale_run):
        """Every rollup group reproduces min/mean/max/p99/sum of the
        exact per-rank series still present in the registry."""
        world, result, _ = scale_run
        by_name = {m.name: m for m in world.obs.registry}
        checked = 0
        for name, fam in result.rollups.items():
            metric = by_name[name]
            if fam["kind"] == "histogram":
                continue
            for group in fam["groups"]:
                rest = group["labels"]
                values = [
                    float(e["value"])
                    for e in metric.snapshot()
                    if "rank" in e["labels"]
                    and all(e["labels"].get(k) == v for k, v in rest.items())
                    and {k for k in e["labels"] if k != "rank"} == set(rest)
                ]
                assert len(values) == group["ranks"]
                assert group["min"] == min(values)
                assert group["max"] == max(values)
                assert group["mean"] == pytest.approx(sum(values) / len(values))
                assert group["sum"] == pytest.approx(sum(values))
                assert group["p99"] == pytest.approx(
                    exact_percentile(values, 0.99)
                )
                checked += 1
        assert checked > 0

    def test_rollup_groups_cover_all_ranks(self, scale_run):
        _, result, _ = scale_run
        full = [
            g
            for fam in result.rollups.values()
            for g in fam["groups"]
            if g["ranks"] == SCALE_RANKS
        ]
        assert full  # at least one family has a series on every rank

    def test_clean_run_has_no_anomalies(self, scale_run):
        _, result, _ = scale_run
        assert result.anomalies.ok, result.anomalies.render()


class TestStragglerDetection:
    def test_faulted_rank_flagged(self):
        from repro.obs.report import run_demo

        result = run_demo(ranks=16, straggler=11)
        report = result.anomalies
        assert not report.ok
        stragglers = [
            f for f in report.findings if f.rule == "barrier_skew"
        ]
        assert [f.subject for f in stragglers] == ["rank11"]

    def test_clean_demo_quiet(self):
        from repro.obs.report import run_demo

        result = run_demo(ranks=16)
        assert result.anomalies.ok, result.anomalies.render()


class TestReportCli:
    @pytest.fixture(scope="class")
    def exported(self, tmp_path_factory):
        from repro.obs.export import write_metrics_snapshot
        from repro.obs.report import run_demo

        tmp = tmp_path_factory.mktemp("telemetry")
        result = run_demo(ranks=8, straggler=5)
        trace = str(tmp / "trace.json")
        metrics = str(tmp / "metrics.json")
        result.world.obs.write_chrome_trace(trace)
        write_metrics_snapshot(metrics, result.world.obs.registry)
        return trace, metrics, tmp

    def test_report_from_files_flags_straggler(self, exported, capsys):
        from repro.obs.report import main

        trace, metrics, tmp = exported
        out_json = str(tmp / "report.json")
        code = main(
            ["report", trace, "--metrics", metrics, "--json", out_json, "--strict"]
        )
        assert code == 1  # strict + straggler finding
        out = capsys.readouterr().out
        assert "rank5" in out
        doc = json.load(open(out_json))
        assert doc["ok"] is False
        assert any(f["subject"] == "rank5" for f in doc["findings"])

    def test_report_not_strict_exits_zero(self, exported):
        from repro.obs.report import main

        trace, metrics, _ = exported
        assert main(["report", trace]) == 0

    def test_report_requires_input(self, capsys):
        from repro.obs.report import main

        assert main(["report"]) == 2
        assert "error" in capsys.readouterr().out

    def test_demo_mode(self, capsys):
        from repro.obs.report import main

        assert main(["report", "--demo", "--ranks", "8", "--strict"]) == 0
        assert (
            main(["report", "--demo", "--ranks", "8", "--straggler", "3", "--strict"])
            == 1
        )
        assert "rank3" in capsys.readouterr().out

    def test_load_trace_roundtrip(self, exported):
        from repro.obs.report import load_trace

        trace, _, _ = exported
        spans, _ = load_trace(trace)
        assert spans
        tracks = {s.track for s in spans}
        assert "rank0" in tracks
        assert all(s.end >= s.start for s in spans)
