"""Tests for the XCCL (NCCL/RCCL) layer."""

import numpy as np
import pytest

from repro.cluster import MemRef, World, run_spmd
from repro.hardware import platform_a, platform_b
from repro.util.errors import CommunicationError
from repro.util.units import MiB
from repro.xccl import (
    NCCL_PARAMS,
    RCCL_PARAMS,
    UniqueId,
    XcclComm,
    XcclContext,
    build_ring,
    params_for,
    ring_bandwidth,
)


def make_ctx(nodes=2, platform=None, params=NCCL_PARAMS):
    w = World(platform or platform_a(with_quirk=False), num_nodes=nodes)
    return w, XcclContext(w, params)


def init_all(w, ctx, uid):
    """Each rank joins with its primary device; returns comms by rank."""
    comms = {}

    def join(rank_ctx):
        comms[rank_ctx.rank] = XcclComm.init_rank(
            ctx, uid, rank_ctx.rank, w.nranks, rank_ctx.device
        )

    return comms, join


class TestUniqueId:
    def test_ids_are_unique(self):
        assert UniqueId.create() != UniqueId.create()

    def test_equality_and_hash(self):
        a = UniqueId.create()
        assert a == a
        assert len({a, a}) == 1

    def test_forged_id_rejected(self):
        with pytest.raises(CommunicationError):
            UniqueId(0)


class TestTopo:
    def test_ring_is_node_major(self):
        w = World(platform_a(with_quirk=False), num_nodes=2)
        devs = list(reversed(w.topology.all_gpus()))
        ring = build_ring(devs)
        assert [d.node for d in ring] == [0, 0, 0, 0, 1, 1, 1, 1]

    def test_duplicate_devices_rejected(self):
        from repro.util.errors import ConfigurationError

        w = World(platform_a(with_quirk=False), num_nodes=1)
        g = w.topology.gpu(0, 0)
        with pytest.raises(ConfigurationError):
            build_ring([g, g])

    def test_nic_aggregation_beats_single_nic(self):
        """4 member GPUs per node → inter-node hops stripe over 4 NICs."""
        w = World(platform_a(with_quirk=False), num_nodes=2)
        topo = w.topology
        full_ring = build_ring(topo.all_gpus())
        solo_ring = build_ring([topo.gpu(0, 0), topo.gpu(1, 0)])
        assert ring_bandwidth(topo, full_ring, NCCL_PARAMS) > 2 * ring_bandwidth(
            topo, solo_ring, NCCL_PARAMS
        )

    def test_single_member_ring_degenerate(self):
        w = World(platform_a(with_quirk=False), num_nodes=1)
        bw = ring_bandwidth(w.topology, [w.topology.gpu(0, 0)], NCCL_PARAMS)
        assert bw == w.platform.node.gpu.mem_bandwidth


class TestInit:
    def test_init_rank_blocks_until_all_join(self):
        w, ctx = make_ctx(nodes=1)
        uid = UniqueId.create()
        times = []

        def prog(rc):
            rc.sim.sleep(rc.rank * 1e-3)
            XcclComm.init_rank(ctx, uid, rc.rank, w.nranks, rc.device)
            times.append(rc.sim.now)

        run_spmd(w, prog)
        assert max(times) - min(times) < 1e-9
        assert min(times) >= 3e-3 + NCCL_PARAMS.init_overhead

    def test_double_join_rejected(self):
        w, ctx = make_ctx(nodes=1)
        uid = UniqueId.create()

        def prog(rc):
            XcclComm.init_rank(ctx, uid, 0, w.nranks, rc.device)

        with pytest.raises(CommunicationError, match="already joined"):
            run_spmd(w, prog)

    def test_inconsistent_size_rejected(self):
        w, ctx = make_ctx(nodes=1)
        uid = UniqueId.create()

        def prog(rc):
            n = 4 if rc.rank == 0 else 3
            XcclComm.init_rank(ctx, uid, rc.rank, n, rc.device)

        with pytest.raises(CommunicationError, match="inconsistent"):
            run_spmd(w, prog)


class TestCollectives:
    def test_all_reduce_sums(self):
        w, ctx = make_ctx()
        uid = UniqueId.create()
        out = {}

        def prog(rc):
            comm = XcclComm.init_rank(ctx, uid, rc.rank, w.nranks, rc.device)
            send = rc.device.malloc(64)
            recv = rc.device.malloc(64)
            send.as_array(np.float64)[:] = float(rc.rank)
            comm.all_reduce(MemRef.device(send), MemRef.device(recv))
            out[rc.rank] = recv.as_array(np.float64).copy()

        run_spmd(w, prog)
        for r in range(8):
            np.testing.assert_allclose(out[r], 28.0)

    def test_broadcast_from_root(self):
        w, ctx = make_ctx()
        uid = UniqueId.create()
        out = {}

        def prog(rc):
            comm = XcclComm.init_rank(ctx, uid, rc.rank, w.nranks, rc.device)
            buf = rc.device.malloc(32)
            if rc.rank == 3:
                buf.as_array(np.int32)[:] = 99
            comm.broadcast(MemRef.device(buf), root=3)
            out[rc.rank] = buf.as_array(np.int32).copy()

        run_spmd(w, prog)
        for r in range(8):
            np.testing.assert_array_equal(out[r], 99)

    def test_reduce_to_root_only(self):
        w, ctx = make_ctx()
        uid = UniqueId.create()
        out = {}

        def prog(rc):
            comm = XcclComm.init_rank(ctx, uid, rc.rank, w.nranks, rc.device)
            send = rc.device.malloc(8)
            send.as_array(np.float64)[:] = 1.0
            recv = rc.device.malloc(8) if rc.rank == 0 else None
            comm.reduce(
                MemRef.device(send),
                None if recv is None else MemRef.device(recv),
                root=0,
            )
            if rc.rank == 0:
                out["v"] = recv.as_array(np.float64)[0]

        run_spmd(w, prog)
        assert out["v"] == 8.0

    def test_all_gather_slot_order(self):
        w, ctx = make_ctx(nodes=1)
        uid = UniqueId.create()
        out = {}

        def prog(rc):
            comm = XcclComm.init_rank(ctx, uid, rc.rank, w.nranks, rc.device)
            send = rc.device.malloc(8)
            send.as_array(np.float64)[:] = float(rc.rank)
            recv = rc.device.malloc(8 * w.nranks)
            comm.all_gather(MemRef.device(send), MemRef.device(recv))
            out[rc.rank] = recv.as_array(np.float64).copy()

        run_spmd(w, prog)
        for r in range(4):
            np.testing.assert_array_equal(out[r], np.arange(4.0))

    def test_reduce_scatter_blocks(self):
        w, ctx = make_ctx(nodes=1)
        uid = UniqueId.create()
        out = {}

        def prog(rc):
            comm = XcclComm.init_rank(ctx, uid, rc.rank, w.nranks, rc.device)
            send = rc.device.malloc(8 * w.nranks)
            send.as_array(np.float64)[:] = np.arange(4.0) * (rc.rank + 1)
            recv = rc.device.malloc(8)
            comm.reduce_scatter(MemRef.device(send), MemRef.device(recv))
            out[rc.rank] = recv.as_array(np.float64)[0]

        run_spmd(w, prog)
        # Sum over ranks of block j = j * (1+2+3+4) = 10 j
        assert out == {0: 0.0, 1: 10.0, 2: 20.0, 3: 30.0}

    def test_mismatched_op_order_rejected(self):
        w, ctx = make_ctx(nodes=1)
        uid = UniqueId.create()

        def prog(rc):
            comm = XcclComm.init_rank(ctx, uid, rc.rank, w.nranks, rc.device)
            buf = MemRef.device(rc.device.malloc(8))
            if rc.rank == 0:
                comm.broadcast(buf, root=0)
            else:
                comm.all_reduce(buf, MemRef.device(rc.device.malloc(8)))

        with pytest.raises(CommunicationError, match="mismatch"):
            run_spmd(w, prog)

    def test_single_process_multi_gpu(self):
        """One rank drives 4 devices = 4 communicator slots (§3.3)."""
        w = World(platform_a(with_quirk=False), num_nodes=1, devices_per_rank=4)
        ctx = XcclContext(w, NCCL_PARAMS)
        uid = UniqueId.create()
        out = {}

        def prog(rc):
            if rc.rank != 0:
                return
            comms, sends, recvs = [], [], []
            # Join all four slots from one process.  Init blocks until
            # all slots joined, so we must spawn helpers - exactly the
            # group-launch problem OMPCCL solves with ncclGroupStart.
            tasks = []
            for d, dev in enumerate(rc.devices):
                send = dev.malloc(8)
                send.as_array(np.float64)[:] = float(d + 1)
                recv = dev.malloc(8)
                sends.append(send)
                recvs.append(recv)

                def worker(d=d, dev=dev, send=send, recv=recv):
                    comm = XcclComm.init_rank(ctx, uid, d, 4, dev)
                    comm.all_reduce(MemRef.device(send), MemRef.device(recv))

                tasks.append(rc.sim.spawn(worker, name=f"slot{d}"))
            for t in tasks:
                t.join()
            out["vals"] = [r.as_array(np.float64)[0] for r in recvs]

        run_spmd(w, prog)
        assert out["vals"] == [10.0, 10.0, 10.0, 10.0]


class TestCalibration:
    def _allreduce_time(self, platform, params, size, nodes):
        w = World(platform, num_nodes=nodes)
        ctx = XcclContext(w, params)
        uid = UniqueId.create()

        def prog(rc):
            comm = XcclComm.init_rank(ctx, uid, rc.rank, w.nranks, rc.device)
            send = MemRef.device(rc.device.malloc(size, virtual=True))
            recv = MemRef.device(rc.device.malloc(size, virtual=True))
            rc.world.global_barrier.wait()
            t0 = rc.sim.now
            comm.all_reduce(send, recv)
            return rc.sim.now - t0

        return max(run_spmd(w, prog).results)

    def test_nccl_faster_than_rccl(self):
        a, b = platform_a(with_quirk=False), platform_b()
        t_nccl = self._allreduce_time(a, NCCL_PARAMS, 16 * MiB, nodes=2)
        t_rccl = self._allreduce_time(b, RCCL_PARAMS, 16 * MiB, nodes=2)
        assert t_nccl < t_rccl

    def test_launch_overhead_dominates_small(self):
        t = self._allreduce_time(platform_a(with_quirk=False), NCCL_PARAMS, 8, nodes=2)
        assert t >= NCCL_PARAMS.launch_overhead

    def test_params_for(self):
        assert params_for("nccl") is NCCL_PARAMS
        assert params_for("rccl") is RCCL_PARAMS
        with pytest.raises(Exception):
            params_for("occl")
