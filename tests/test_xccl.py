"""Tests for the XCCL (NCCL/RCCL) layer."""

import numpy as np
import pytest

from repro.cluster import MemRef, World, run_spmd
from repro.hardware import platform_a, platform_b
from repro.util.errors import CommunicationError
from repro.util.units import KiB, MiB
from repro.xccl import (
    NCCL_PARAMS,
    RCCL_PARAMS,
    UniqueId,
    XcclComm,
    XcclContext,
    analyze,
    build_ring,
    params_for,
    ring_bandwidth,
    select_algorithm,
)


def make_ctx(nodes=2, platform=None, params=NCCL_PARAMS):
    w = World(platform or platform_a(with_quirk=False), num_nodes=nodes)
    return w, XcclContext(w, params)


def init_all(w, ctx, uid):
    """Each rank joins with its primary device; returns comms by rank."""
    comms = {}

    def join(rank_ctx):
        comms[rank_ctx.rank] = XcclComm.init_rank(
            ctx, uid, rank_ctx.rank, w.nranks, rank_ctx.device
        )

    return comms, join


class TestUniqueId:
    def test_ids_are_unique(self):
        assert UniqueId.create() != UniqueId.create()

    def test_equality_and_hash(self):
        a = UniqueId.create()
        assert a == a
        assert len({a, a}) == 1

    def test_forged_id_rejected(self):
        with pytest.raises(CommunicationError):
            UniqueId(0)


class TestTopo:
    def test_ring_is_node_major(self):
        w = World(platform_a(with_quirk=False), num_nodes=2)
        devs = list(reversed(w.topology.all_gpus()))
        ring = build_ring(devs)
        assert [d.node for d in ring] == [0, 0, 0, 0, 1, 1, 1, 1]

    def test_duplicate_devices_rejected(self):
        from repro.util.errors import ConfigurationError

        w = World(platform_a(with_quirk=False), num_nodes=1)
        g = w.topology.gpu(0, 0)
        with pytest.raises(ConfigurationError):
            build_ring([g, g])

    def test_nic_aggregation_beats_single_nic(self):
        """4 member GPUs per node → inter-node hops stripe over 4 NICs."""
        w = World(platform_a(with_quirk=False), num_nodes=2)
        topo = w.topology
        full_ring = build_ring(topo.all_gpus())
        solo_ring = build_ring([topo.gpu(0, 0), topo.gpu(1, 0)])
        assert ring_bandwidth(topo, full_ring, NCCL_PARAMS) > 2 * ring_bandwidth(
            topo, solo_ring, NCCL_PARAMS
        )

    def test_single_member_ring_degenerate(self):
        w = World(platform_a(with_quirk=False), num_nodes=1)
        bw = ring_bandwidth(w.topology, [w.topology.gpu(0, 0)], NCCL_PARAMS)
        assert bw == w.platform.node.gpu.mem_bandwidth


class TestInit:
    def test_init_rank_blocks_until_all_join(self):
        w, ctx = make_ctx(nodes=1)
        uid = UniqueId.create()
        times = []

        def prog(rc):
            rc.sim.sleep(rc.rank * 1e-3)
            XcclComm.init_rank(ctx, uid, rc.rank, w.nranks, rc.device)
            times.append(rc.sim.now)

        run_spmd(w, prog)
        assert max(times) - min(times) < 1e-9
        assert min(times) >= 3e-3 + NCCL_PARAMS.init_overhead

    def test_double_join_rejected(self):
        w, ctx = make_ctx(nodes=1)
        uid = UniqueId.create()

        def prog(rc):
            XcclComm.init_rank(ctx, uid, 0, w.nranks, rc.device)

        with pytest.raises(CommunicationError, match="already joined"):
            run_spmd(w, prog)

    def test_inconsistent_size_rejected(self):
        w, ctx = make_ctx(nodes=1)
        uid = UniqueId.create()

        def prog(rc):
            n = 4 if rc.rank == 0 else 3
            XcclComm.init_rank(ctx, uid, rc.rank, n, rc.device)

        with pytest.raises(CommunicationError, match="inconsistent"):
            run_spmd(w, prog)


class TestCollectives:
    def test_all_reduce_sums(self):
        w, ctx = make_ctx()
        uid = UniqueId.create()
        out = {}

        def prog(rc):
            comm = XcclComm.init_rank(ctx, uid, rc.rank, w.nranks, rc.device)
            send = rc.device.malloc(64)
            recv = rc.device.malloc(64)
            send.as_array(np.float64)[:] = float(rc.rank)
            comm.all_reduce(MemRef.device(send), MemRef.device(recv))
            out[rc.rank] = recv.as_array(np.float64).copy()

        run_spmd(w, prog)
        for r in range(8):
            np.testing.assert_allclose(out[r], 28.0)

    def test_broadcast_from_root(self):
        w, ctx = make_ctx()
        uid = UniqueId.create()
        out = {}

        def prog(rc):
            comm = XcclComm.init_rank(ctx, uid, rc.rank, w.nranks, rc.device)
            buf = rc.device.malloc(32)
            if rc.rank == 3:
                buf.as_array(np.int32)[:] = 99
            comm.broadcast(MemRef.device(buf), root=3)
            out[rc.rank] = buf.as_array(np.int32).copy()

        run_spmd(w, prog)
        for r in range(8):
            np.testing.assert_array_equal(out[r], 99)

    def test_reduce_to_root_only(self):
        w, ctx = make_ctx()
        uid = UniqueId.create()
        out = {}

        def prog(rc):
            comm = XcclComm.init_rank(ctx, uid, rc.rank, w.nranks, rc.device)
            send = rc.device.malloc(8)
            send.as_array(np.float64)[:] = 1.0
            recv = rc.device.malloc(8) if rc.rank == 0 else None
            comm.reduce(
                MemRef.device(send),
                None if recv is None else MemRef.device(recv),
                root=0,
            )
            if rc.rank == 0:
                out["v"] = recv.as_array(np.float64)[0]

        run_spmd(w, prog)
        assert out["v"] == 8.0

    def test_all_gather_slot_order(self):
        w, ctx = make_ctx(nodes=1)
        uid = UniqueId.create()
        out = {}

        def prog(rc):
            comm = XcclComm.init_rank(ctx, uid, rc.rank, w.nranks, rc.device)
            send = rc.device.malloc(8)
            send.as_array(np.float64)[:] = float(rc.rank)
            recv = rc.device.malloc(8 * w.nranks)
            comm.all_gather(MemRef.device(send), MemRef.device(recv))
            out[rc.rank] = recv.as_array(np.float64).copy()

        run_spmd(w, prog)
        for r in range(4):
            np.testing.assert_array_equal(out[r], np.arange(4.0))

    def test_reduce_scatter_blocks(self):
        w, ctx = make_ctx(nodes=1)
        uid = UniqueId.create()
        out = {}

        def prog(rc):
            comm = XcclComm.init_rank(ctx, uid, rc.rank, w.nranks, rc.device)
            send = rc.device.malloc(8 * w.nranks)
            send.as_array(np.float64)[:] = np.arange(4.0) * (rc.rank + 1)
            recv = rc.device.malloc(8)
            comm.reduce_scatter(MemRef.device(send), MemRef.device(recv))
            out[rc.rank] = recv.as_array(np.float64)[0]

        run_spmd(w, prog)
        # Sum over ranks of block j = j * (1+2+3+4) = 10 j
        assert out == {0: 0.0, 1: 10.0, 2: 20.0, 3: 30.0}

    def test_mismatched_op_order_rejected(self):
        w, ctx = make_ctx(nodes=1)
        uid = UniqueId.create()

        def prog(rc):
            comm = XcclComm.init_rank(ctx, uid, rc.rank, w.nranks, rc.device)
            buf = MemRef.device(rc.device.malloc(8))
            if rc.rank == 0:
                comm.broadcast(buf, root=0)
            else:
                comm.all_reduce(buf, MemRef.device(rc.device.malloc(8)))

        with pytest.raises(CommunicationError, match="mismatch"):
            run_spmd(w, prog)

    def test_single_process_multi_gpu(self):
        """One rank drives 4 devices = 4 communicator slots (§3.3)."""
        w = World(platform_a(with_quirk=False), num_nodes=1, devices_per_rank=4)
        ctx = XcclContext(w, NCCL_PARAMS)
        uid = UniqueId.create()
        out = {}

        def prog(rc):
            if rc.rank != 0:
                return
            comms, sends, recvs = [], [], []
            # Join all four slots from one process.  Init blocks until
            # all slots joined, so we must spawn helpers - exactly the
            # group-launch problem OMPCCL solves with ncclGroupStart.
            tasks = []
            for d, dev in enumerate(rc.devices):
                send = dev.malloc(8)
                send.as_array(np.float64)[:] = float(d + 1)
                recv = dev.malloc(8)
                sends.append(send)
                recvs.append(recv)

                def worker(d=d, dev=dev, send=send, recv=recv):
                    comm = XcclComm.init_rank(ctx, uid, d, 4, dev)
                    comm.all_reduce(MemRef.device(send), MemRef.device(recv))

                tasks.append(rc.sim.spawn(worker, name=f"slot{d}"))
            for t in tasks:
                t.join()
            out["vals"] = [r.as_array(np.float64)[0] for r in recvs]

        run_spmd(w, prog)
        assert out["vals"] == [10.0, 10.0, 10.0, 10.0]


class TestCalibration:
    def _allreduce_time(self, platform, params, size, nodes):
        w = World(platform, num_nodes=nodes)
        ctx = XcclContext(w, params)
        uid = UniqueId.create()

        def prog(rc):
            comm = XcclComm.init_rank(ctx, uid, rc.rank, w.nranks, rc.device)
            send = MemRef.device(rc.device.malloc(size, virtual=True))
            recv = MemRef.device(rc.device.malloc(size, virtual=True))
            rc.world.global_barrier.wait()
            t0 = rc.sim.now
            comm.all_reduce(send, recv)
            return rc.sim.now - t0

        return max(run_spmd(w, prog).results)

    def test_nccl_faster_than_rccl(self):
        a, b = platform_a(with_quirk=False), platform_b()
        t_nccl = self._allreduce_time(a, NCCL_PARAMS, 16 * MiB, nodes=2)
        t_rccl = self._allreduce_time(b, RCCL_PARAMS, 16 * MiB, nodes=2)
        assert t_nccl < t_rccl

    def test_launch_overhead_dominates_small(self):
        t = self._allreduce_time(platform_a(with_quirk=False), NCCL_PARAMS, 8, nodes=2)
        assert t >= NCCL_PARAMS.launch_overhead

    def test_params_for(self):
        assert params_for("nccl") is NCCL_PARAMS
        assert params_for("rccl") is RCCL_PARAMS
        with pytest.raises(Exception):
            params_for("occl")


class TestAlgorithmSelection:
    def _ctopo(self, nodes=2, gpus=None, platform=None, params=NCCL_PARAMS):
        w = World(platform or platform_a(with_quirk=False), num_nodes=nodes)
        if gpus is None:
            devs = w.topology.all_gpus()
        else:
            devs = [w.topology.gpu(n, i) for n, i in gpus]
        return analyze(w.topology, build_ring(devs), params)

    def test_tree_for_small_messages(self):
        ct = self._ctopo()
        sel = select_algorithm("all_reduce", 8 * KiB, ct, NCCL_PARAMS)
        assert sel.algo == "tree"

    def test_ring_for_single_node(self):
        ct = self._ctopo(nodes=1)
        assert not ct.hierarchical
        sel = select_algorithm("all_reduce", 64 * MiB, ct, NCCL_PARAMS)
        assert sel.algo == "ring"

    def test_hier_for_multi_node_large(self):
        ct = self._ctopo()
        assert ct.hierarchical and ct.per_node == 4
        sel = select_algorithm("all_reduce", 64 * MiB, ct, NCCL_PARAMS)
        assert sel.algo == "hier_ring"
        scopes = [ph.scope for ph in sel.phases]
        assert scopes == ["intra", "inter", "intra"]

    def test_hier_strictly_faster_than_ring(self):
        ct = self._ctopo()
        auto = select_algorithm("all_reduce", 64 * MiB, ct, NCCL_PARAMS)
        ring = select_algorithm("all_reduce", 64 * MiB, ct, NCCL_PARAMS, force="ring")
        assert auto.algo == "hier_ring"
        assert auto.seconds < ring.seconds

    def test_ring_kept_where_hier_costs_more(self):
        # Large broadcast moves the whole vector through both tiers, so
        # the decomposition cannot win; cost-min keeps the flat ring.
        ct = self._ctopo()
        sel = select_algorithm("broadcast", 64 * MiB, ct, NCCL_PARAMS)
        assert sel.algo == "ring"

    def test_thresholds_gate_policy(self):
        # Mid-sized messages stay on the ring even where a hierarchy
        # structurally exists (below hier_min_bytes, above tree_max).
        ct = self._ctopo()
        assert select_algorithm("all_reduce", 2 * MiB, ct, NCCL_PARAMS).algo == "ring"
        assert select_algorithm("all_reduce", 128 * KiB, ct, NCCL_PARAMS).algo == "ring"

    def test_no_hierarchy_with_one_gpu_per_node(self):
        ct = self._ctopo(nodes=2, gpus=[(0, 0), (1, 0)])
        assert not ct.hierarchical
        sel = select_algorithm("all_reduce", 64 * MiB, ct, NCCL_PARAMS)
        assert sel.algo == "ring"

    def test_no_hierarchy_with_nonuniform_nodes(self):
        ct = self._ctopo(nodes=2, gpus=[(0, 0), (0, 1), (0, 2), (1, 0)])
        assert ct.per_node is None and not ct.hierarchical
        sel = select_algorithm("all_reduce", 64 * MiB, ct, NCCL_PARAMS)
        assert sel.algo == "ring"

    def test_forced_ineligible_raises(self):
        ct = self._ctopo(nodes=1)
        with pytest.raises(CommunicationError, match="not runnable"):
            select_algorithm("all_reduce", 64 * MiB, ct, NCCL_PARAMS, force="hier_ring")

    def test_unknown_algorithm_rejected(self):
        ct = self._ctopo()
        with pytest.raises(CommunicationError, match="unknown algorithm"):
            select_algorithm("all_reduce", 8, ct, NCCL_PARAMS, force="butterfly")

    def test_forced_ring_matches_legacy_model(self):
        # The ring plan must reproduce the historical _model_time
        # formula exactly (the calibration contract).
        ct = self._ctopo()
        params = NCCL_PARAMS
        n = ct.ndev
        for size in (8, 128 * KiB, 2 * MiB, 64 * MiB):
            sel = select_algorithm("all_reduce", size, ct, params, force="ring")
            wire = 2.0 * size * (n - 1) / n
            expect = (
                params.launch_overhead
                + 2 * (n - 1) * params.step_latency
                + 3 * ct.flat_hop_latency
                + wire / (ct.flat_bw * params.efficiency)
            )
            assert sel.seconds == pytest.approx(expect, rel=1e-12)


class TestCollectiveValidation:
    def test_mismatched_nbytes_rejected(self):
        w, ctx = make_ctx(nodes=1)
        uid = UniqueId.create()

        def prog(rc):
            comm = XcclComm.init_rank(ctx, uid, rc.rank, w.nranks, rc.device)
            size = 16 if rc.rank == 2 else 8
            send = MemRef.device(rc.device.malloc(size))
            recv = MemRef.device(rc.device.malloc(size))
            comm.all_reduce(send, recv)

        with pytest.raises(CommunicationError, match="size mismatch"):
            run_spmd(w, prog)

    def test_mismatched_forced_algo_rejected(self):
        w, ctx = make_ctx(nodes=1)
        uid = UniqueId.create()

        def prog(rc):
            comm = XcclComm.init_rank(ctx, uid, rc.rank, w.nranks, rc.device)
            send = MemRef.device(rc.device.malloc(8))
            recv = MemRef.device(rc.device.malloc(8))
            comm.all_reduce(send, recv, algo="ring" if rc.rank == 0 else None)

        with pytest.raises(CommunicationError, match="algorithm mismatch"):
            run_spmd(w, prog)

    def test_alltoall_exchanges_blocks(self):
        w, ctx = make_ctx(nodes=1)
        uid = UniqueId.create()
        out = {}

        def prog(rc):
            comm = XcclComm.init_rank(ctx, uid, rc.rank, w.nranks, rc.device)
            send = rc.device.malloc(8 * w.nranks)
            # Block j of rank i holds 10*i + j.
            send.as_array(np.float64)[:] = 10.0 * rc.rank + np.arange(w.nranks)
            recv = rc.device.malloc(8 * w.nranks)
            comm.alltoall(MemRef.device(send), MemRef.device(recv))
            out[rc.rank] = recv.as_array(np.float64).copy()

        run_spmd(w, prog)
        for j in range(4):
            # Block i of rank j's recv came from rank i's block j.
            np.testing.assert_array_equal(out[j], 10.0 * np.arange(4) + j)

    def test_alltoall_size_validation(self):
        w, ctx = make_ctx(nodes=1)
        uid = UniqueId.create()

        def prog(rc):
            comm = XcclComm.init_rank(ctx, uid, rc.rank, w.nranks, rc.device)
            send = MemRef.device(rc.device.malloc(10))
            recv = MemRef.device(rc.device.malloc(10))
            comm.alltoall(send, recv)  # 10 bytes not divisible into 4

        with pytest.raises(CommunicationError, match="does not divide"):
            run_spmd(w, prog)

    def test_hier_bit_identical_to_ring(self):
        # Same 2-node/8-GPU world, same inputs, forced ring vs forced
        # hierarchy: results must match bit for bit (contributions are
        # always combined in slot order, whatever the transport).
        results = {}
        for algo in ("ring", "hier_ring"):
            w, ctx = make_ctx(nodes=2)
            uid = UniqueId.create()
            out = {}

            def prog(rc, algo=algo, ctx=ctx, uid=uid, w=w, out=out):
                comm = XcclComm.init_rank(ctx, uid, rc.rank, w.nranks, rc.device)
                send = rc.device.malloc(1024)
                rng = np.random.default_rng(rc.rank)
                send.as_array(np.float64)[:] = rng.standard_normal(128)
                recv = rc.device.malloc(1024)
                comm.all_reduce(MemRef.device(send), MemRef.device(recv), algo=algo)
                out[rc.rank] = recv.as_array(np.float64).copy()

            run_spmd(w, prog)
            results[algo] = out
        for r in range(8):
            np.testing.assert_array_equal(
                results["ring"][r], results["hier_ring"][r]
            )

    def test_algo_metric_labels(self):
        w, ctx = make_ctx(nodes=2)
        uid = UniqueId.create()

        def prog(rc):
            comm = XcclComm.init_rank(ctx, uid, rc.rank, w.nranks, rc.device)
            send = MemRef.device(rc.device.malloc(64 * MiB, virtual=True))
            recv = MemRef.device(rc.device.malloc(64 * MiB, virtual=True))
            comm.all_reduce(send, recv)

        run_spmd(w, prog)
        assert w.obs.value("xccl.algo", algo="hier_ring", op="all_reduce") == 1


class TestVectorizedSweep:
    def _ctopo(self, nodes=2):
        w = World(platform_a(with_quirk=False), num_nodes=nodes)
        return analyze(w.topology, build_ring(w.topology.all_gpus()), NCCL_PARAMS)

    SIZES = [8, 1 * KiB, 8 * KiB, 128 * KiB, 2 * MiB, 16 * MiB, 64 * MiB]

    @pytest.mark.parametrize("op", ["all_reduce", "broadcast"])
    def test_linear_cost_reproduces_plan(self, op):
        from repro.xccl.algorithms import linear_cost, plan

        ct = self._ctopo()
        for algo in ("ring", "tree", "hier_ring"):
            fixed, slope = linear_cost(algo, op, ct, NCCL_PARAMS)
            for size in self.SIZES:
                exact = plan(algo, op, size, ct, NCCL_PARAMS).seconds
                assert fixed + slope * size == pytest.approx(exact, rel=1e-12)

    @pytest.mark.parametrize("op", ["all_reduce", "broadcast"])
    def test_select_sweep_matches_scalar_selection(self, op):
        from repro.xccl.algorithms import select_sweep

        ct = self._ctopo()
        algos, seconds = select_sweep(op, self.SIZES, ct, NCCL_PARAMS)
        for size, algo, sec in zip(self.SIZES, algos, seconds):
            sel = select_algorithm(op, size, ct, NCCL_PARAMS)
            assert algo == sel.algo, f"{op} @ {size}"
            assert sec == pytest.approx(sel.seconds, rel=1e-12)

    def test_select_sweep_spans_all_regimes(self):
        # The sweep must actually traverse tree -> ring -> hier so the
        # parity test above exercises every policy gate.
        from repro.xccl.algorithms import select_sweep

        algos, _ = select_sweep("all_reduce", self.SIZES, self._ctopo(), NCCL_PARAMS)
        assert {"tree", "ring", "hier_ring"} <= set(algos)

    def test_select_sweep_single_node_keeps_ring(self):
        from repro.xccl.algorithms import select_sweep

        ct = self._ctopo(nodes=1)
        algos, seconds = select_sweep("all_reduce", [64 * MiB], ct, NCCL_PARAMS)
        assert list(algos) == ["ring"]
        assert np.isfinite(seconds).all()

    def test_linear_cost_ineligible_raises(self):
        from repro.xccl.algorithms import linear_cost

        ct = self._ctopo(nodes=1)
        with pytest.raises(CommunicationError, match="not runnable"):
            linear_cost("hier_ring", "all_reduce", ct, NCCL_PARAMS)
