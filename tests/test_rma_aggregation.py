"""Small-message aggregation, pointer prefetch, and the fence/stream
regressions fixed alongside them:

* a failed-but-polled operation must still raise at the next fence,
* a group-scoped fence must not drain non-member streams,
* retried intra-node transfers must re-occupy their pooled stream,
* pointer-cache miss fetches must be routed and counted like any get.
"""

import numpy as np
import pytest

from repro.apps import CannonConfig, cannon_reference, run_cannon
from repro.cluster import MemRef, World, run_spmd
from repro.core import DiompParams, DiompRuntime, RmaAggregationParams
from repro.faults import FaultPlan, FaultSpec
from repro.hardware import platform_a
from repro.util.errors import ConfigurationError, FatalError
from repro.util.units import KiB


def make_world(nodes=2, ranks_per_node=1, params=None, **kw):
    w = World(
        platform_a(with_quirk=False),
        num_nodes=nodes,
        ranks_per_node=ranks_per_node,
        **kw,
    )
    DiompRuntime(w, params)
    return w


def agg_params(**kw):
    return DiompParams(aggregation=RmaAggregationParams(enabled=True, **kw))


class TestAggregation:
    def test_small_puts_coalesce_into_one_conduit_message(self):
        """16 × 1 KiB puts between fences become one conduit message;
        the data landing on the target is bit-identical either way."""
        results = {}
        for enabled in (False, True):
            params = agg_params() if enabled else DiompParams()
            w = make_world(params=params)

            def prog(ctx):
                g = ctx.diomp.alloc(16 * KiB)
                g.typed(np.uint8)[:] = 0
                ctx.diomp.barrier()
                if ctx.rank == 0:
                    for i in range(16):
                        src = np.full(KiB, i + 1, dtype=np.uint8)
                        ctx.diomp.put(
                            1, g, MemRef.host(ctx.node, src), target_offset=i * KiB
                        )
                    ctx.diomp.fence()
                ctx.diomp.barrier()
                if ctx.rank == 1:
                    results[enabled] = g.typed(np.uint8).copy()

            res = run_spmd(w, prog)
            results[enabled, "elapsed"] = res.elapsed
            results[enabled, "messages"] = w.obs.value("conduit.messages", op="put")
            # Logical operation accounting is mode-independent.
            assert w.obs.value("rma.ops", op="put", path="conduit") == 16
            assert w.obs.value("rma.bytes", op="put") == 16 * KiB
            if enabled:
                assert w.obs.value("rma.agg.batches") == 1
                assert w.obs.value("rma.agg.batched_ops") == 16
                assert w.obs.value("rma.agg.bytes") == 16 * KiB
        assert np.array_equal(results[False], results[True])
        # The acceptance bar: >= 2x fewer conduit messages, faster.
        assert results[False, "messages"] >= 2 * results[True, "messages"]
        assert results[True, "elapsed"] < results[False, "elapsed"]

    def test_threshold_flushes_and_fence_flush(self):
        """A queue flushes early at max_batch_ops; the remainder
        flushes at the fence — nothing is lost, order per address
        is respected."""
        w = make_world(params=agg_params(max_batch_ops=4))

        def prog(ctx):
            g = ctx.diomp.alloc(8 * KiB)
            g.typed(np.uint8)[:] = 0
            ctx.diomp.barrier()
            if ctx.rank == 0:
                for i in range(6):
                    src = np.full(KiB, i + 1, dtype=np.uint8)
                    ctx.diomp.put(
                        1, g, MemRef.host(ctx.node, src), target_offset=i * KiB
                    )
                # 4 flushed by the count threshold, 2 still queued.
                assert ctx.diomp.rma.pending_ops >= 2
                ctx.diomp.fence()
                assert ctx.diomp.rma.pending_ops == 0
            ctx.diomp.barrier()
            if ctx.rank == 1:
                got = g.typed(np.uint8)[: 6 * KiB]
                expect = np.repeat(np.arange(1, 7, dtype=np.uint8), KiB)
                assert np.array_equal(got, expect)

        run_spmd(w, prog)
        assert w.obs.value("rma.agg.batches", reason="count") == 1
        assert w.obs.value("rma.agg.batches", reason="fence") == 1
        assert w.obs.value("rma.agg.batched_ops") == 6

    def test_size_threshold_flush(self):
        w = make_world(
            params=agg_params(eligible_bytes=4 * KiB, max_batch_bytes=8 * KiB)
        )

        def prog(ctx):
            g = ctx.diomp.alloc(16 * KiB)
            ctx.diomp.barrier()
            if ctx.rank == 0:
                for i in range(4):
                    src = np.full(4 * KiB, i + 1, dtype=np.uint8)
                    ctx.diomp.put(
                        1, g, MemRef.host(ctx.node, src), target_offset=i * 4 * KiB
                    )
                ctx.diomp.fence()
            ctx.diomp.barrier()

        run_spmd(w, prog)
        assert w.obs.value("rma.agg.batches", reason="size") == 2

    def test_large_ops_bypass_aggregation(self):
        """Operations above eligible_bytes go straight to the conduit."""
        w = make_world(params=agg_params(eligible_bytes=1 * KiB))

        def prog(ctx):
            g = ctx.diomp.alloc(64 * KiB)
            ctx.diomp.barrier()
            if ctx.rank == 0:
                src = np.ones(64 * KiB, dtype=np.uint8)
                ctx.diomp.put(1, g, MemRef.host(ctx.node, src))
                ctx.diomp.fence()
            ctx.diomp.barrier()

        run_spmd(w, prog)
        assert w.obs.value("rma.agg.batches") == 0
        assert w.obs.value("conduit.messages", op="put") == 1

    def test_gets_aggregate_too(self):
        w = make_world(params=agg_params())
        got = {}

        def prog(ctx):
            g = ctx.diomp.alloc(8 * KiB)
            g.typed(np.uint8)[:] = ctx.rank + 10
            ctx.diomp.barrier()
            if ctx.rank == 0:
                dsts = [np.zeros(KiB, dtype=np.uint8) for _ in range(8)]
                for i, dst in enumerate(dsts):
                    ctx.diomp.get(
                        1, g, MemRef.host(ctx.node, dst), target_offset=i * KiB
                    )
                ctx.diomp.fence()
                got["data"] = np.concatenate(dsts)
            ctx.diomp.barrier()

        run_spmd(w, prog)
        assert (got["data"] == 11).all()
        assert w.obs.value("conduit.messages", op="get") == 1
        assert w.obs.value("rma.agg.batched_ops", op="get") == 8

    def test_cannon_bit_identical_with_aggregation(self):
        """The ablation acceptance check: Cannon's result must be
        bit-identical with aggregation on and off."""
        cfg = CannonConfig(n=32, execute=True)

        def assemble(params):
            w = World(platform_a(with_quirk=False), num_nodes=4, ranks_per_node=1)
            DiompRuntime(w, params)
            res = run_cannon(w, cfg, impl="diomp")
            ordered = sorted(res.results, key=lambda r: r["rank"])
            return np.concatenate([r["C"] for r in ordered])

        clean = assemble(DiompParams())
        aggregated = assemble(agg_params())
        assert np.array_equal(clean, aggregated)
        np.testing.assert_allclose(aggregated, cannon_reference(cfg, 4))

    def test_transient_inside_batch_retries_whole_batch(self):
        """A transient on the aggregated message retries the entire
        batch; member puts are idempotent so the data is exact."""
        plan = FaultPlan([FaultSpec(site="conduit.put", kind="transient", nth=1)])
        w = make_world(params=agg_params(), faults=plan)

        def prog(ctx):
            g = ctx.diomp.alloc(8 * KiB)
            g.typed(np.uint8)[:] = 0
            ctx.diomp.barrier()
            if ctx.rank == 0:
                for i in range(8):
                    src = np.full(KiB, i + 1, dtype=np.uint8)
                    ctx.diomp.put(
                        1, g, MemRef.host(ctx.node, src), target_offset=i * KiB
                    )
                ctx.diomp.fence()
            ctx.diomp.barrier()
            if ctx.rank == 1:
                expect = np.repeat(np.arange(1, 9, dtype=np.uint8), KiB)
                assert np.array_equal(g.typed(np.uint8), expect)

        run_spmd(w, prog)
        assert plan.injected == 1
        assert w.obs.value("conduit.retries") == 1
        assert w.obs.value("conduit.giveups") == 0
        assert w.obs.value("rma.agg.batches") == 1

    def test_param_validation(self):
        with pytest.raises(ConfigurationError):
            RmaAggregationParams(max_batch_ops=0)
        with pytest.raises(ConfigurationError):
            RmaAggregationParams(max_batch_bytes=0)
        with pytest.raises(ConfigurationError):
            RmaAggregationParams(eligible_bytes=-1)


class TestPointerPrefetch:
    def test_prefetch_eliminates_misses(self):
        """With prefetch, remote asymmetric accesses never pay the
        per-miss blocking pointer fetch."""
        for prefetch in (False, True):
            w = make_world(
                nodes=2,
                ranks_per_node=2,
                params=DiompParams(pointer_prefetch=prefetch),
            )

            def prog(ctx):
                a = ctx.diomp.alloc_asymmetric(256 * (ctx.rank + 1))
                a.data.as_array(np.uint8)[:] = ctx.rank
                ctx.diomp.barrier()
                if ctx.rank == 0:
                    for t in (1, 2, 3):
                        dst = np.zeros(64, dtype=np.uint8)
                        ctx.diomp.get(t, a, MemRef.host(ctx.node, dst))
                        ctx.diomp.fence()
                        assert (dst == t).all()
                ctx.diomp.barrier()

            run_spmd(w, prog)
            misses = w.obs.value("rma.pointer_cache", event="miss")
            if prefetch:
                assert misses == 0
                assert w.obs.value("rma.pointer_cache", event="prefetch") > 0
            else:
                assert misses == 3
                assert w.obs.value("rma.pointer_cache", event="prefetch") == 0


class TestFailedOpSurvivesPolling:
    def test_polled_failure_still_raises_at_fence(self):
        """Regression: pending_ops used to prune any op whose event
        tested complete — including *failed* ones, silently dropping
        the error the fence owes the caller."""
        plan = FaultPlan(
            [FaultSpec(site="conduit.put", kind="transient", fatal=True, nth=1)]
        )
        w = make_world(faults=plan)
        polled = {}

        def prog(ctx):
            g = ctx.diomp.alloc(64)
            ctx.diomp.barrier()
            if ctx.rank == 0:
                ctx.diomp.put(1, g, g.memref())
                # Let the failure land, then poll: the failed op must
                # be retained, not pruned.
                ctx.sim.sleep(1e-3)
                polled["pending"] = ctx.diomp.rma.pending_ops
                ctx.diomp.fence()

        with pytest.raises(FatalError):
            run_spmd(w, prog)
        assert polled["pending"] == 1


class TestGroupFenceScoping:
    def test_group_fence_leaves_nonmember_streams_running(self):
        """Regression: fence(group=...) used to hybrid_fence([]) every
        stream pool, draining streams carrying non-member operations —
        an over-synchronization that forfeits the point of group
        scoping."""
        w = make_world(nodes=1, ranks_per_node=3)
        big = 4 * 1024 * 1024
        checks = {}

        def prog(ctx):
            g = ctx.diomp.alloc(big)
            ctx.diomp.barrier()
            if ctx.rank in (0, 1):
                grp = ctx.diomp.group_create([0, 1])
            if ctx.rank == 0:
                small = np.ones(KiB, dtype=np.uint8)
                huge = np.ones(big, dtype=np.uint8)
                # Member-targeted small op, non-member-targeted huge op.
                ctx.diomp.put(1, g, MemRef.host(ctx.node, small))
                ctx.diomp.put(2, g, MemRef.host(ctx.node, huge))
                t0 = ctx.sim.now
                ctx.diomp.fence(group=grp)
                checks["scoped_elapsed"] = ctx.sim.now - t0
                # The huge non-member transfer must still be in flight.
                checks["pending_after_scoped"] = ctx.diomp.rma.pending_ops
                ctx.diomp.fence()
                checks["pending_after_full"] = ctx.diomp.rma.pending_ops
            ctx.diomp.barrier()

        run_spmd(w, prog)
        assert checks["pending_after_scoped"] == 1
        assert checks["pending_after_full"] == 0

    def test_group_fence_flushes_only_member_batches(self):
        """Aggregation queues to non-members survive a group fence."""
        w = make_world(nodes=3, params=agg_params())

        def prog(ctx):
            g = ctx.diomp.alloc(4 * KiB)
            ctx.diomp.barrier()
            if ctx.rank in (0, 1):
                grp = ctx.diomp.group_create([0, 1])
            if ctx.rank == 0:
                src = np.ones(KiB, dtype=np.uint8)
                ctx.diomp.put(1, g, MemRef.host(ctx.node, src))
                ctx.diomp.put(2, g, MemRef.host(ctx.node, src))
                ctx.diomp.fence(group=grp)
                # The rank-2 put is still parked in its queue.
                assert ctx.diomp.rma.pending_ops == 1
                ctx.diomp.fence()
            ctx.diomp.barrier()

        run_spmd(w, prog)
        assert w.obs.value("rma.agg.batches", reason="fence") == 2


class TestRetriedIntraNodeStream:
    def test_retry_reoccupies_pooled_stream(self):
        """Regression: a retried intra-node transfer re-issued on the
        fabric but its pooled stream was enqueued only once, so the
        second DMA pass was invisible to stream accounting."""
        plan = FaultPlan([FaultSpec(site="rma.intra", kind="transient", nth=1)])
        w = make_world(nodes=1, ranks_per_node=2, faults=plan)

        def prog(ctx):
            g = ctx.diomp.alloc(KiB)
            g.typed(np.uint8)[:] = 0
            ctx.diomp.barrier()
            if ctx.rank == 0:
                src = np.full(KiB, 7, dtype=np.uint8)
                ctx.diomp.put(1, g, MemRef.host(ctx.node, src))
                ctx.diomp.fence()
            ctx.diomp.barrier()
            if ctx.rank == 1:
                assert (g.typed(np.uint8) == 7).all()

        run_spmd(w, prog)
        assert plan.injected == 1
        assert w.obs.value("conduit.retries", conduit="intra") == 1
        pool = w.ranks[0].diomp.stream_pool(0)
        streams = pool._idle + pool._busy
        # One stream, occupied once per attempt.
        assert sum(s.ops_enqueued for s in streams) == 2


class TestPointerFetchRouting:
    def test_same_node_fetch_uses_ipc_and_is_counted(self):
        """Regression: the pointer-cache miss fetch bypassed
        hierarchical path selection (always a conduit get) and never
        showed up in rma.ops/rma.bytes."""
        w = make_world(nodes=1, ranks_per_node=2)

        def prog(ctx):
            a = ctx.diomp.alloc_asymmetric(256)
            a.data.as_array(np.uint8)[:] = ctx.rank + 1
            ctx.diomp.barrier()
            if ctx.rank == 0:
                dst = np.zeros(256, dtype=np.uint8)
                ctx.diomp.get(1, a, MemRef.host(ctx.node, dst))
                ctx.diomp.fence()
                assert (dst == 2).all()
            ctx.diomp.barrier()

        run_spmd(w, prog)
        # Both the 8-byte pointer fetch and the 256-byte data get ride
        # the intra-node IPC path; the NIC is never touched.
        assert w.obs.value("rma.ops", op="get", path="ipc") == 2
        assert w.obs.value("rma.bytes", op="get", path="ipc") == 256 + 8
        assert w.obs.value("conduit.messages", op="get") == 0
        assert w.obs.value("rma.pointer_cache", event="miss") == 1

    def test_cross_node_fetch_counted_as_conduit_get(self):
        w = make_world(nodes=2)

        def prog(ctx):
            a = ctx.diomp.alloc_asymmetric(128)
            a.data.as_array(np.uint8)[:] = ctx.rank + 1
            ctx.diomp.barrier()
            if ctx.rank == 0:
                dst = np.zeros(128, dtype=np.uint8)
                ctx.diomp.get(1, a, MemRef.host(ctx.node, dst))
                ctx.diomp.fence()
                assert (dst == 2).all()
            ctx.diomp.barrier()

        run_spmd(w, prog)
        assert w.obs.value("rma.ops", op="get", path="conduit") == 2
        assert w.obs.value("rma.bytes", op="get", path="conduit") == 128 + 8
