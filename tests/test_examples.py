"""Every example script must run to completion (they self-verify)."""

import pathlib
import runpy

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script, capsys):
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip()  # every example prints its findings


def test_all_examples_discovered():
    names = {p.stem for p in EXAMPLES}
    assert "quickstart" in names
    assert len(names) >= 3  # the deliverable floor; we ship more
