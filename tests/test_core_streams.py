"""Tests for the stream pool (lazy/reuse/bounded/partial-sync/hybrid)."""

import pytest

from repro.cluster import World
from repro.core import StreamPool, StreamPoolParams
from repro.hardware import platform_a
from repro.sim import Future
from repro.util.errors import ConfigurationError


def make_pool(**kw):
    w = World(platform_a(with_quirk=False), num_nodes=1)
    pool = StreamPool(
        w.sim, w.ranks[0].device, params=StreamPoolParams(**kw) if kw else None
    )
    return w.sim, pool


class TestLazyAndReuse:
    def test_no_streams_before_first_use(self):
        sim, pool = make_pool()
        assert pool.active_count == 0  # lazy: nothing preallocated

    def test_idle_stream_reused(self):
        sim, pool = make_pool()
        stats = {}

        def prog():
            s1 = pool.acquire()
            s1.enqueue(1e-6)
            s1.synchronize()  # now idle
            s2 = pool.acquire()
            stats["same"] = s2 is s1
            stats["created"] = pool.created
            stats["reused"] = pool.reused

        sim.spawn(prog)
        sim.run()
        assert stats == {"same": True, "created": 1, "reused": 1}

    def test_reuse_disabled_creates_new(self):
        sim, pool = make_pool(reuse=False, max_active_streams=4)
        stats = {}

        def prog():
            s1 = pool.acquire()
            s1.enqueue(1e-6)
            s1.synchronize()
            pool.acquire()
            stats["created"] = pool.created

        sim.spawn(prog)
        sim.run()
        assert stats["created"] == 2

    def test_reuse_disabled_never_reuses_even_past_bound(self):
        """The ablation: with reuse off, every acquire must create a
        fresh stream — including the path where acquire runs a partial
        sync at the concurrency bound (which used to hand back a
        just-synced stream and count it as reused)."""
        sim, pool = make_pool(reuse=False, max_active_streams=4)

        def prog():
            for _ in range(12):
                pool.acquire().enqueue(1e-5)
            pool.synchronize_all()

        sim.spawn(prog)
        sim.run()
        assert pool.reused == 0
        assert pool.created == 12
        assert pool.destroyed == 12  # every synced stream torn down
        assert pool.active_count == 0

    def test_reuse_disabled_destroys_idle(self):
        sim, pool = make_pool(reuse=False)

        def prog():
            s = pool.acquire()
            s.enqueue(1e-6)
            s.synchronize()
            pool.acquire().enqueue(1e-6)
            pool.synchronize_all()

        sim.spawn(prog)
        sim.run()
        assert pool.created == 2
        assert pool.destroyed == 2
        assert pool.active_count == 0

    def test_busy_streams_not_reused(self):
        sim, pool = make_pool()
        stats = {}

        def prog():
            s1 = pool.acquire()
            s1.enqueue(1.0)  # long-running
            s2 = pool.acquire()
            stats["distinct"] = s2 is not s1
            pool.synchronize_all()

        sim.spawn(prog)
        sim.run()
        assert stats["distinct"]


class TestBoundedConcurrency:
    def test_pool_never_exceeds_bound(self):
        sim, pool = make_pool(max_active_streams=4)

        def prog():
            for i in range(20):
                s = pool.acquire()
                s.enqueue(1e-5 * (i + 1))
                assert pool.active_count <= 4
            pool.synchronize_all()

        sim.spawn(prog)
        sim.run()
        assert pool.created <= 4

    def test_partial_sync_releases_half(self):
        sim, pool = make_pool(max_active_streams=4, partial_sync_fraction=0.5)
        stats = {}

        def prog():
            for _ in range(4):
                pool.acquire().enqueue(1e-3)
            # Fifth acquire triggers partial synchronization.
            pool.acquire().enqueue(1e-3)
            stats["partial_syncs"] = pool.partial_syncs
            pool.synchronize_all()

        sim.spawn(prog)
        sim.run()
        assert stats["partial_syncs"] == 1

    def test_partial_sync_waits_soonest_half_only(self):
        """Partial sync must block only until the *soonest* half
        completes, leaving slower streams running."""
        sim, pool = make_pool(max_active_streams=2, partial_sync_fraction=0.5)
        times = {}

        def prog():
            fast = pool.acquire()
            fast.enqueue(1e-4)
            slow = pool.acquire()
            slow.enqueue(1.0)
            pool.acquire()  # waits on the fast one only
            times["resumed_at"] = sim.now
            pool.synchronize_all()

        sim.spawn(prog)
        sim.run()
        assert times["resumed_at"] == pytest.approx(1e-4)

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            StreamPoolParams(max_active_streams=0)
        with pytest.raises(ConfigurationError):
            StreamPoolParams(partial_sync_fraction=0.0)


class TestHybridFence:
    def test_fence_waits_streams_and_events(self):
        sim, pool = make_pool()
        done = {}

        def prog():
            s = pool.acquire()
            s.enqueue(2e-3)
            ev_future = Future(sim, description="net")
            sim.call_later(5e-3, ev_future.fire)

            class Event:
                def test(self):
                    return ev_future.poll()

                def wait(self):
                    return ev_future.wait()

            pool.hybrid_fence([Event()])
            done["t"] = sim.now

        sim.spawn(prog)
        sim.run()
        assert done["t"] >= 5e-3  # waited for the slower (network) side

    def test_fence_with_nothing_pending_cheap(self):
        sim, pool = make_pool()
        out = {}

        def prog():
            iterations = pool.hybrid_fence([])
            out["iters"] = iterations
            out["t"] = sim.now

        sim.spawn(prog)
        sim.run()
        assert out["iters"] == 0
        assert out["t"] == 0.0

    def test_fence_blocks_on_earliest_event_eta(self):
        """With eta-carrying events the fence must block on the
        earliest-completing one, not whichever happens to sit at the
        head of the pending list (the old behaviour)."""
        sim, pool = make_pool()
        order = []
        out = {}

        class Event:
            def __init__(self, fut, name):
                self.fut = fut
                self.name = name
                self.eta = fut.eta

            def test(self):
                return self.fut.poll()

            def wait(self):
                order.append(self.name)
                return self.fut.wait()

        def prog():
            late = Future(sim, description="late")
            late.eta = 5e-3
            early = Future(sim, description="early")
            early.eta = 1e-3
            sim.call_later(5e-3, late.fire)
            sim.call_later(1e-3, early.fire)
            # Deliberately list the late event first.
            out["iters"] = pool.hybrid_fence([Event(late, "late"), Event(early, "early")])
            out["t"] = sim.now

        sim.spawn(prog)
        sim.run()
        assert order == ["early", "late"]  # earliest eta blocked on first
        assert out["iters"] == 2  # exactly one blocking wait per event
        assert out["t"] == pytest.approx(5e-3, rel=1e-3)

    def test_fence_prefers_stream_completing_before_event(self):
        """A stream whose available_at precedes the earliest event eta
        is synchronized first, keeping iteration count minimal."""
        sim, pool = make_pool()
        out = {}

        class Event:
            def __init__(self, fut):
                self.fut = fut
                self.eta = fut.eta

            def test(self):
                return self.fut.poll()

            def wait(self):
                return self.fut.wait()

        def prog():
            s = pool.acquire()
            s.enqueue(1e-4)  # completes well before the event
            fut = Future(sim, description="net")
            fut.eta = 5e-3
            sim.call_later(5e-3, fut.fire)
            out["iters"] = pool.hybrid_fence([Event(fut)])
            out["t"] = sim.now

        sim.spawn(prog)
        sim.run()
        assert out["iters"] == 2  # stream first, then the one event
        assert out["t"] >= 5e-3

    def test_fence_iterations_traced(self):
        sim, pool = make_pool()
        out = {}

        def prog():
            for _ in range(3):
                pool.acquire().enqueue(1e-4)
            out["iters"] = pool.hybrid_fence([])

        sim.spawn(prog)
        sim.run()
        assert out["iters"] >= 1
        assert pool.poll_iterations == out["iters"]
