"""Tests for the stream pool (lazy/reuse/bounded/partial-sync/hybrid)."""

import pytest

from repro.cluster import World
from repro.core import StreamPool, StreamPoolParams
from repro.hardware import platform_a
from repro.sim import Future, Simulator
from repro.util.errors import ConfigurationError


def make_pool(**kw):
    w = World(platform_a(with_quirk=False), num_nodes=1)
    pool = StreamPool(
        w.sim, w.ranks[0].device, params=StreamPoolParams(**kw) if kw else None
    )
    return w.sim, pool


class TestLazyAndReuse:
    def test_no_streams_before_first_use(self):
        sim, pool = make_pool()
        assert pool.active_count == 0  # lazy: nothing preallocated

    def test_idle_stream_reused(self):
        sim, pool = make_pool()
        stats = {}

        def prog():
            s1 = pool.acquire()
            s1.enqueue(1e-6)
            s1.synchronize()  # now idle
            s2 = pool.acquire()
            stats["same"] = s2 is s1
            stats["created"] = pool.created
            stats["reused"] = pool.reused

        sim.spawn(prog)
        sim.run()
        assert stats == {"same": True, "created": 1, "reused": 1}

    def test_reuse_disabled_creates_new(self):
        sim, pool = make_pool(reuse=False, max_active_streams=4)
        stats = {}

        def prog():
            s1 = pool.acquire()
            s1.enqueue(1e-6)
            s1.synchronize()
            pool.acquire()
            stats["created"] = pool.created

        sim.spawn(prog)
        sim.run()
        assert stats["created"] == 2

    def test_busy_streams_not_reused(self):
        sim, pool = make_pool()
        stats = {}

        def prog():
            s1 = pool.acquire()
            s1.enqueue(1.0)  # long-running
            s2 = pool.acquire()
            stats["distinct"] = s2 is not s1
            pool.synchronize_all()

        sim.spawn(prog)
        sim.run()
        assert stats["distinct"]


class TestBoundedConcurrency:
    def test_pool_never_exceeds_bound(self):
        sim, pool = make_pool(max_active_streams=4)

        def prog():
            for i in range(20):
                s = pool.acquire()
                s.enqueue(1e-5 * (i + 1))
                assert pool.active_count <= 4
            pool.synchronize_all()

        sim.spawn(prog)
        sim.run()
        assert pool.created <= 4

    def test_partial_sync_releases_half(self):
        sim, pool = make_pool(max_active_streams=4, partial_sync_fraction=0.5)
        stats = {}

        def prog():
            for _ in range(4):
                pool.acquire().enqueue(1e-3)
            # Fifth acquire triggers partial synchronization.
            pool.acquire().enqueue(1e-3)
            stats["partial_syncs"] = pool.partial_syncs
            pool.synchronize_all()

        sim.spawn(prog)
        sim.run()
        assert stats["partial_syncs"] == 1

    def test_partial_sync_waits_soonest_half_only(self):
        """Partial sync must block only until the *soonest* half
        completes, leaving slower streams running."""
        sim, pool = make_pool(max_active_streams=2, partial_sync_fraction=0.5)
        times = {}

        def prog():
            fast = pool.acquire()
            fast.enqueue(1e-4)
            slow = pool.acquire()
            slow.enqueue(1.0)
            pool.acquire()  # waits on the fast one only
            times["resumed_at"] = sim.now
            pool.synchronize_all()

        sim.spawn(prog)
        sim.run()
        assert times["resumed_at"] == pytest.approx(1e-4)

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            StreamPoolParams(max_active_streams=0)
        with pytest.raises(ConfigurationError):
            StreamPoolParams(partial_sync_fraction=0.0)


class TestHybridFence:
    def test_fence_waits_streams_and_events(self):
        sim, pool = make_pool()
        done = {}

        def prog():
            s = pool.acquire()
            s.enqueue(2e-3)
            ev_future = Future(sim, description="net")
            sim.call_later(5e-3, ev_future.fire)

            class Event:
                def test(self):
                    return ev_future.poll()

                def wait(self):
                    return ev_future.wait()

            pool.hybrid_fence([Event()])
            done["t"] = sim.now

        sim.spawn(prog)
        sim.run()
        assert done["t"] >= 5e-3  # waited for the slower (network) side

    def test_fence_with_nothing_pending_cheap(self):
        sim, pool = make_pool()
        out = {}

        def prog():
            iterations = pool.hybrid_fence([])
            out["iters"] = iterations
            out["t"] = sim.now

        sim.spawn(prog)
        sim.run()
        assert out["iters"] == 0
        assert out["t"] == 0.0

    def test_fence_iterations_traced(self):
        sim, pool = make_pool()
        out = {}

        def prog():
            for _ in range(3):
                pool.acquire().enqueue(1e-4)
            out["iters"] = pool.hybrid_fence([])

        sim.spawn(prog)
        sim.run()
        assert out["iters"] >= 1
        assert pool.poll_iterations == out["iters"]
