"""Anomaly rules: straggler, imbalance, SLO, and telemetry checks."""

import pytest

from repro.obs.anomaly import (
    AnomalyInputs,
    BarrierSkewRule,
    DroppedSeriesRule,
    EngineThroughputRule,
    MetricsView,
    RetrySloRule,
    WaitImbalanceRule,
    detect,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import SpanRecord


def barrier_spans(lateness, rounds=3, dur=1e-6, gap=1e-4):
    """Synthetic rendezvous spans: rank r arrives lateness[r] late."""
    spans = []
    sid = 0
    for k in range(rounds):
        base = k * gap
        for r, late in enumerate(lateness):
            sid += 1
            spans.append(
                SpanRecord(
                    name="barrier",
                    track=f"rank{r}",
                    start=base + late,
                    end=base + late + dur,
                    depth=0,
                    args={},
                    span_id=sid,
                )
            )
    return spans


class TestBarrierSkew:
    def test_flags_straggler(self):
        # Seven on-time ranks (small structural skew), one 300 us late.
        lateness = [0.0, 1e-7, 2e-7, 1e-7, 0.0, 300e-6, 2e-7, 1e-7]
        findings = BarrierSkewRule().evaluate(
            AnomalyInputs(spans=barrier_spans(lateness))
        )
        assert len(findings) == 1
        f = findings[0]
        assert f.subject == "rank5"
        assert f.severity == "warning"
        assert f.value == pytest.approx(300e-6, rel=0.01)

    def test_quiet_on_structural_skew(self):
        # Uniformly spread arrivals: no outlier, nothing flagged.
        lateness = [i * 1e-6 for i in range(8)]
        assert BarrierSkewRule().evaluate(
            AnomalyInputs(spans=barrier_spans(lateness))
        ) == []

    def test_quiet_below_three_tracks(self):
        assert BarrierSkewRule().evaluate(
            AnomalyInputs(spans=barrier_spans([0.0, 1e-3]))
        ) == []

    def test_collective_prefixes_count_as_rendezvous(self):
        spans = barrier_spans([0.0, 0.0, 0.0, 500e-6])
        renamed = [
            SpanRecord(
                name="ompccl.allreduce",
                track=s.track,
                start=s.start,
                end=s.end,
                depth=0,
                args={},
                span_id=s.span_id,
            )
            for s in spans
        ]
        (f,) = BarrierSkewRule().evaluate(AnomalyInputs(spans=renamed))
        assert f.subject == "rank3"

    def test_non_rendezvous_spans_ignored(self):
        spans = [
            SpanRecord("rma.put", f"rank{r}", r * 1e-3, r * 1e-3 + 1e-6, 0, {}, r + 1)
            for r in range(6)
        ]
        assert BarrierSkewRule().evaluate(AnomalyInputs(spans=spans)) == []

    def test_lateness_by_track_pairs_kth_instances(self):
        scores = BarrierSkewRule().lateness_by_track(
            barrier_spans([0.0, 10e-6], rounds=2)
        )
        assert scores["rank1"][0] == pytest.approx(10e-6)
        assert scores["rank1"][1] == 2  # participated in both rounds
        assert scores["rank0"][0] == 0.0


class TestWaitImbalance:
    def make(self, busy_us):
        spans = []
        for r, busy in enumerate(busy_us):
            spans.append(
                SpanRecord(
                    "compute", f"rank{r}", 0.0, busy * 1e-6, 0, {}, r + 1
                )
            )
        return AnomalyInputs(spans=spans)

    def test_flags_overloaded_rank_and_cluster(self):
        findings = WaitImbalanceRule().evaluate(
            self.make([10, 11, 10, 12, 11, 95])
        )
        subjects = {f.subject for f in findings}
        assert "cluster" in subjects and "rank5" in subjects

    def test_quiet_when_balanced(self):
        assert WaitImbalanceRule().evaluate(self.make([10, 11, 10, 12])) == []


class TestRetrySlo:
    def test_retry_rate_and_giveups(self):
        reg = MetricsRegistry()
        reg.counter("conduit.messages").inc(100)
        reg.counter("conduit.retries").inc(20)
        reg.counter("conduit.giveups").inc(1)
        findings = RetrySloRule().evaluate(
            AnomalyInputs(metrics=MetricsView(registry=reg))
        )
        rates = [f for f in findings if "retry rate" in f.message]
        assert rates and rates[0].value == pytest.approx(0.2)
        assert any(f.severity == "critical" for f in findings)

    def test_quiet_under_slo(self):
        reg = MetricsRegistry()
        reg.counter("conduit.messages").inc(100)
        reg.counter("conduit.retries").inc(2)
        assert RetrySloRule().evaluate(
            AnomalyInputs(metrics=MetricsView(registry=reg))
        ) == []

    def test_fault_injections_reported_info(self):
        reg = MetricsRegistry()
        reg.counter("faults.injected").inc(3)
        (f,) = RetrySloRule().evaluate(
            AnomalyInputs(metrics=MetricsView(registry=reg))
        )
        assert f.severity == "info" and "3 fault" in f.message


class TestTelemetryRules:
    def test_dropped_series(self):
        reg = MetricsRegistry(max_series_per_metric=2)
        c = reg.counter("x")
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            for r in range(5):
                c.inc(rank=r)
        (f,) = DroppedSeriesRule().evaluate(
            AnomalyInputs(metrics=MetricsView(registry=reg))
        )
        assert f.value == 3.0

    def test_engine_throughput_disabled_by_default(self):
        reg = MetricsRegistry()
        reg.gauge("sim.events_per_sec").set(10.0)
        inputs = AnomalyInputs(metrics=MetricsView(registry=reg))
        assert EngineThroughputRule().evaluate(inputs) == []
        (f,) = EngineThroughputRule(min_events_per_sec=1000.0).evaluate(inputs)
        assert f.subject == "engine"


class TestMetricsView:
    def test_snapshot_backed_values(self):
        reg = MetricsRegistry()
        reg.counter("conduit.retries").inc(4, rank=0)
        reg.counter("conduit.retries").inc(6, rank=1)
        view = MetricsView(snapshot=reg.snapshot())
        assert view.value("conduit.retries") == 10.0
        assert view.value("conduit.retries", rank=1) == 6.0
        assert view.value("missing") == 0.0

    def test_snapshot_backed_dropped_series(self):
        snap = {"health": {"dropped_series": 7}}
        assert MetricsView(snapshot=snap).dropped_series() == 7.0

    def test_empty_view(self):
        view = MetricsView()
        assert view.empty
        assert view.value("anything") == 0.0


class TestDetect:
    def test_report_ordering_and_dict(self):
        lateness = [0.0, 1e-7, 2e-7, 300e-6]
        reg = MetricsRegistry()
        reg.counter("faults.injected").inc(1)
        report = detect(spans=barrier_spans(lateness), registry=reg)
        assert not report.ok
        # Most severe first.
        severities = [f.severity for f in report.findings]
        assert severities == sorted(
            severities, key=["critical", "warning", "info"].index
        )
        doc = report.to_dict()
        assert doc["ok"] is False
        assert doc["findings"][0]["rule"] == "barrier_skew"
        assert "barrier_skew" in doc["rules"]

    def test_clean_run_ok_and_renders(self):
        report = detect(spans=barrier_spans([0.0, 1e-7, 2e-7, 1e-7]))
        assert report.ok
        assert "none" in report.render()

    def test_custom_rules(self):
        report = detect(
            spans=barrier_spans([0.0, 0.0, 0.0, 1.0]),
            rules=[WaitImbalanceRule()],
        )
        assert report.rules == ["wait_imbalance"]

    def test_render_with_findings_is_table(self):
        report = detect(spans=barrier_spans([0.0, 1e-7, 2e-7, 300e-6]))
        out = report.render()
        assert "rank3" in out and "straggler" in out


class TestDashboardSection:
    def test_anomaly_section_in_dashboard(self):
        from repro.obs.export import render_dashboard

        reg = MetricsRegistry()
        reg.counter("x").inc()
        out = render_dashboard(
            reg, spans=barrier_spans([0.0, 1e-7, 1e-7, 400e-6]), anomalies=True
        )
        assert "Anomaly findings" in out
        assert "rank3" in out
