"""Tests for the overlap variant of Minimod and MPI accumulate /
runtime finalize (extension features)."""

import numpy as np
import pytest

from repro.apps import MinimodConfig, minimod_reference, run_minimod
from repro.cluster import MemRef, World, run_spmd
from repro.core import DiompRuntime
from repro.hardware import platform_a
from repro.mpi import MpiWorld, Window
from repro.util.errors import CommunicationError, ConfigurationError


def assemble_u(results):
    ordered = sorted(results, key=lambda r: r["rank"])
    return np.concatenate([r["u"] for r in ordered])


class TestMinimodOverlap:
    def test_matches_reference(self):
        cfg = MinimodConfig(nx=32, ny=10, nz=10, steps=4)
        w = World(platform_a(with_quirk=False), num_nodes=1)
        res = run_minimod(w, cfg, impl="diomp-overlap")
        np.testing.assert_allclose(
            assemble_u(res.results), minimod_reference(cfg), rtol=1e-5, atol=1e-7
        )

    def test_matches_reference_multi_node(self):
        cfg = MinimodConfig(nx=64, ny=8, nz=8, steps=5)
        w = World(platform_a(with_quirk=False), num_nodes=2)
        res = run_minimod(w, cfg, impl="diomp-overlap")
        np.testing.assert_allclose(
            assemble_u(res.results), minimod_reference(cfg), rtol=1e-5, atol=1e-7
        )

    def test_overlap_not_slower_than_synchronous(self):
        """Hiding halos under the interior update must help (or at
        least not hurt) when compute per step dominates."""
        cfg = MinimodConfig(nx=1200, ny=240, nz=240, steps=5, execute=False)

        def elapsed(impl):
            w = World(platform_a(with_quirk=False), num_nodes=2)
            res = run_minimod(w, cfg, impl=impl)
            return max(r["elapsed"] for r in res.results)

        assert elapsed("diomp-overlap") <= elapsed("diomp") * 1.001

    def test_thin_slab_rejected(self):
        cfg = MinimodConfig(nx=16, ny=8, nz=8, steps=1)  # lnx=4 < 2r
        w = World(platform_a(with_quirk=False), num_nodes=1)
        with pytest.raises(ConfigurationError, match="overlap"):
            run_minimod(w, cfg, impl="diomp-overlap")


class TestMpiAccumulate:
    def test_sums_into_target(self):
        w = World(platform_a(with_quirk=False), num_nodes=2)
        mpi = MpiWorld(w)
        bufs = {}

        def prog(ctx):
            comm = mpi.comm_world(ctx.rank)
            buf = ctx.device.malloc(64)
            buf.as_array(np.float64)[:] = 1.0
            bufs[ctx.rank] = buf
            win = Window.create(comm, MemRef.device(buf))
            win.fence()
            src = ctx.device.malloc(64)
            src.as_array(np.float64)[:] = float(ctx.rank)
            win.accumulate(MemRef.device(src), target=0, dtype=np.float64)
            win.fence()

        run_spmd(w, prog)
        # 1 (initial) + sum of all ranks' contributions.
        np.testing.assert_allclose(
            bufs[0].as_array(np.float64), 1.0 + sum(range(8))
        )

    def test_accumulate_with_max(self):
        w = World(platform_a(with_quirk=False), num_nodes=1)
        mpi = MpiWorld(w)
        bufs = {}

        def prog(ctx):
            comm = mpi.comm_world(ctx.rank)
            buf = ctx.device.malloc(8)
            bufs[ctx.rank] = buf
            win = Window.create(comm, MemRef.device(buf))
            win.fence()
            src = ctx.device.malloc(8)
            src.as_array(np.float64)[:] = float(ctx.rank * 10)
            win.accumulate(
                MemRef.device(src), target=2, dtype=np.float64, op=np.maximum
            )
            win.fence()

        run_spmd(w, prog)
        assert bufs[2].as_array(np.float64)[0] == 30.0

    def test_outside_epoch_rejected(self):
        w = World(platform_a(with_quirk=False), num_nodes=1)
        mpi = MpiWorld(w)

        def prog(ctx):
            comm = mpi.comm_world(ctx.rank)
            win = Window.create(comm, MemRef.device(ctx.device.malloc(8)))
            if ctx.rank == 0:
                win.accumulate(
                    MemRef.device(ctx.device.malloc(8)), target=1, dtype=np.float64
                )
            ctx.world.global_barrier.wait()

        with pytest.raises(CommunicationError, match="epoch"):
            run_spmd(w, prog)


class TestFinalize:
    def test_clean_shutdown_reports_no_leaks(self):
        w = World(platform_a(with_quirk=False), num_nodes=1)
        rt = DiompRuntime(w)

        def prog(ctx):
            g = ctx.diomp.alloc(256)
            ctx.diomp.barrier()
            if ctx.rank == 0:
                ctx.diomp.put(1, g, g.memref())
                ctx.diomp.fence()
            ctx.diomp.barrier()
            ctx.diomp.free(g)

        run_spmd(w, prog)
        leaks = rt.finalize()
        assert leaks == {"symmetric_leaks": 0, "local_leaks": 0, "host_leaks": 0}

    def test_leaked_buffers_counted(self):
        w = World(platform_a(with_quirk=False), num_nodes=1)
        rt = DiompRuntime(w)

        def prog(ctx):
            ctx.diomp.alloc(256)  # never freed
            ctx.diomp.alloc_host(128)  # never freed

        run_spmd(w, prog)
        leaks = rt.finalize()
        assert leaks["symmetric_leaks"] == 4  # one per rank
        assert leaks["host_leaks"] == 4

    def test_unfenced_rma_rejected(self):
        w = World(platform_a(with_quirk=False), num_nodes=2)
        rt = DiompRuntime(w)

        def prog(ctx):
            g = ctx.diomp.alloc(1 << 20, virtual=True)
            ctx.diomp.barrier()
            if ctx.rank == 0:
                ctx.diomp.put(4, g, g.memref())
            # no fence: the op may still be in flight at shutdown

        run_spmd(w, prog)
        if rt.handles[0].rma.pending_ops:
            with pytest.raises(CommunicationError, match="unfenced"):
                rt.finalize()
        else:  # pragma: no cover - op drained before teardown
            rt.finalize()
