"""Protocol-level tests for the mini-MPI matching engine: the eager/
rendezvous switch, ordering across protocols, and staging chains."""

import numpy as np
import pytest

from repro.cluster import MemRef, World, run_spmd
from repro.hardware import platform_a
from repro.mpi import ANY_SOURCE, MpiParams, MpiWorld, waitall
from repro.mpi import testall as mpi_testall
from repro.util.units import KiB, MiB


def make(nodes=2, **kw):
    w = World(platform_a(with_quirk=False), num_nodes=nodes)
    return w, MpiWorld(w, MpiParams(**kw) if kw else None)


def href(ctx, arr):
    return MemRef.host(ctx.node, arr)


class TestEagerThreshold:
    @pytest.mark.parametrize("delta", [-1, 0, 1])
    def test_boundary_sizes_roundtrip(self, delta):
        """Messages at threshold-1, threshold, threshold+1 all arrive
        intact regardless of which protocol carries them."""
        w, mpi = make()
        size = mpi.params.eager_threshold + delta
        out = {}

        def prog(ctx):
            comm = mpi.comm_world(ctx.rank)
            if ctx.rank == 0:
                comm.send(href(ctx, np.full(size, 7, dtype=np.uint8)), dest=1)
            elif ctx.rank == 1:
                buf = np.zeros(size, dtype=np.uint8)
                comm.recv(href(ctx, buf), source=0)
                out["ok"] = bool((buf == 7).all())

        run_spmd(w, prog)
        assert out["ok"]

    def test_eager_send_completes_before_recv_posted(self):
        """Below the threshold the sender finishes locally; above it
        the sender blocks until the receiver matches."""
        w, mpi = make()
        eager_size = 1 * KiB
        rndv_size = 1 * MiB
        out = {}

        def prog(ctx):
            comm = mpi.comm_world(ctx.rank)
            if ctx.rank == 0:
                t0 = ctx.sim.now
                comm.send(href(ctx, np.zeros(eager_size, dtype=np.uint8)), dest=1)
                out["eager_send"] = ctx.sim.now - t0
                t0 = ctx.sim.now
                comm.send(href(ctx, np.zeros(rndv_size, dtype=np.uint8)), dest=1)
                out["rndv_send"] = ctx.sim.now - t0
            elif ctx.rank == 1:
                ctx.sim.sleep(5e-3)  # receiver arrives late
                buf1 = np.zeros(eager_size, dtype=np.uint8)
                buf2 = np.zeros(rndv_size, dtype=np.uint8)
                comm.recv(href(ctx, buf1), source=0)
                comm.recv(href(ctx, buf2), source=0)

        run_spmd(w, prog)
        # Eager returned in microseconds; rendezvous waited ~5 ms.
        assert out["eager_send"] < 1e-4
        assert out["rndv_send"] > 4e-3

    def test_mixed_protocol_ordering(self):
        """A small (eager) and a large (rendezvous) message with the
        same source/tag must still match in send order."""
        w, mpi = make()
        out = []

        def prog(ctx):
            comm = mpi.comm_world(ctx.rank)
            if ctx.rank == 0:
                comm.send(href(ctx, np.array([1], dtype=np.uint8)), dest=1, tag=9)
                big = np.full(256 * KiB, 2, dtype=np.uint8)
                comm.send(href(ctx, big), dest=1, tag=9)
            elif ctx.rank == 1:
                a = np.zeros(1, dtype=np.uint8)
                b = np.zeros(256 * KiB, dtype=np.uint8)
                comm.recv(href(ctx, a), source=0, tag=9)
                comm.recv(href(ctx, b), source=0, tag=9)
                out.extend([int(a[0]), int(b[0])])

        run_spmd(w, prog)
        assert out == [1, 2]


class TestRendezvousMatching:
    def test_unexpected_rts_matched_later(self):
        w, mpi = make()
        out = {}

        def prog(ctx):
            comm = mpi.comm_world(ctx.rank)
            if ctx.rank == 0:
                comm.send(href(ctx, np.full(1 * MiB, 3, dtype=np.uint8)), dest=1)
            elif ctx.rank == 1:
                ctx.sim.sleep(1e-3)  # RTS arrives unexpected
                buf = np.zeros(1 * MiB, dtype=np.uint8)
                comm.recv(href(ctx, buf), source=0)
                out["v"] = int(buf[0])

        run_spmd(w, prog)
        assert out["v"] == 3

    def test_any_source_matches_rendezvous(self):
        w, mpi = make()
        out = {}

        def prog(ctx):
            comm = mpi.comm_world(ctx.rank)
            if ctx.rank == 3:
                comm.send(href(ctx, np.full(512 * KiB, 5, dtype=np.uint8)), dest=0)
            elif ctx.rank == 0:
                buf = np.zeros(512 * KiB, dtype=np.uint8)
                src, _tag, _n = comm.recv(href(ctx, buf), source=ANY_SOURCE)
                out["src"] = src
                out["v"] = int(buf[0])

        run_spmd(w, prog)
        assert out == {"src": 3, "v": 5}

    def test_rendezvous_overflow_rejected(self):
        w, mpi = make()

        def prog(ctx):
            comm = mpi.comm_world(ctx.rank)
            if ctx.rank == 0:
                comm.send(href(ctx, np.zeros(1 * MiB, dtype=np.uint8)), dest=1)
            elif ctx.rank == 1:
                comm.recv(href(ctx, np.zeros(1 * KiB, dtype=np.uint8)), source=0)

        with pytest.raises(Exception, match="overflow"):
            run_spmd(w, prog)


class TestRequests:
    def test_testall_transitions(self):
        w, mpi = make()
        seen = []

        def prog(ctx):
            comm = mpi.comm_world(ctx.rank)
            if ctx.rank == 1:
                bufs = [np.zeros(1 * MiB, dtype=np.uint8) for _ in range(3)]
                reqs = [comm.irecv(href(ctx, b), source=0, tag=i) for i, b in enumerate(bufs)]
                seen.append(mpi_testall(reqs))
                waitall(reqs)
                seen.append(mpi_testall(reqs))
            elif ctx.rank == 0:
                for i in range(3):
                    comm.send(
                        href(ctx, np.zeros(1 * MiB, dtype=np.uint8)), dest=1, tag=i
                    )

        run_spmd(w, prog)
        assert seen == [False, True]


class TestStagingChain:
    def test_staged_message_arrives_intact(self):
        """Same-node device rendezvous messages hop through host memory
        but the payload must still arrive bit-exact."""
        w, mpi = make(nodes=1)
        out = {}

        def prog(ctx):
            comm = mpi.comm_world(ctx.rank)
            if ctx.rank == 0:
                buf = ctx.device.malloc(1 * MiB)
                buf.as_array(np.uint8)[:] = np.arange(1 * MiB, dtype=np.uint8) % 251
                comm.send(MemRef.device(buf), dest=1)
            elif ctx.rank == 1:
                buf = ctx.device.malloc(1 * MiB)
                comm.recv(MemRef.device(buf), source=0)
                expected = np.arange(1 * MiB, dtype=np.uint8) % 251
                out["ok"] = bool((buf.as_array(np.uint8) == expected).all())

        run_spmd(w, prog)
        assert out["ok"]

    def test_staging_touches_host_links(self):
        w, mpi = make(nodes=1)

        def prog(ctx):
            comm = mpi.comm_world(ctx.rank)
            if ctx.rank == 0:
                buf = ctx.device.malloc(1 * MiB, virtual=True)
                comm.send(MemRef.device(buf), dest=1)
            elif ctx.rank == 1:
                buf = ctx.device.malloc(1 * MiB, virtual=True)
                comm.recv(MemRef.device(buf), source=0)

        run_spmd(w, prog)
        assert w.fabric.resource_busy_until("node0/host-gpu0/d2h") > 0.0
        assert w.fabric.resource_busy_until("node0/host-gpu1/h2d") > 0.0

    def test_inter_node_gpudirect_skips_host(self):
        w, mpi = make(nodes=2)

        def prog(ctx):
            comm = mpi.comm_world(ctx.rank)
            if ctx.rank == 0:
                buf = ctx.device.malloc(1 * MiB, virtual=True)
                comm.send(MemRef.device(buf), dest=4)
            elif ctx.rank == 4:
                buf = ctx.device.malloc(1 * MiB, virtual=True)
                comm.recv(MemRef.device(buf), source=0)

        run_spmd(w, prog)
        assert w.fabric.resource_busy_until("node0/host-gpu0/d2h") == 0.0
        assert w.fabric.resource_busy_until("node0/nic0/tx") > 0.0
