"""Tests for scatter/gather/alltoall and group-scoped fence."""

import numpy as np
import pytest

from repro.cluster import MemRef, World, run_spmd
from repro.core import DiompRuntime
from repro.hardware import platform_a
from repro.mpi import MpiWorld
from repro.mpi import collectives as coll
from repro.util.errors import CommunicationError
from repro.util.units import MiB


def make_mpi(nodes=2):
    w = World(platform_a(with_quirk=False), num_nodes=nodes)
    return w, MpiWorld(w)


def href(ctx, arr):
    return MemRef.host(ctx.node, arr)


class TestScatter:
    def test_blocks_distributed_in_rank_order(self):
        w, mpi = make_mpi()
        out = {}

        def prog(ctx):
            comm = mpi.comm_world(ctx.rank)
            send = None
            if ctx.rank == 2:
                send = href(ctx, np.repeat(np.arange(8.0), 4))
            recv = np.zeros(4)
            coll.scatter(comm, send, href(ctx, recv), root=2)
            out[ctx.rank] = recv.copy()

        run_spmd(w, prog)
        for r in range(8):
            np.testing.assert_array_equal(out[r], float(r))

    def test_root_without_buffer_rejected(self):
        w, mpi = make_mpi(nodes=1)

        def prog(ctx):
            coll.scatter(
                mpi.comm_world(ctx.rank), None, href(ctx, np.zeros(4)), root=0
            )

        with pytest.raises(CommunicationError, match="send buffer"):
            run_spmd(w, prog)

    def test_wrong_send_size_rejected(self):
        w, mpi = make_mpi(nodes=1)

        def prog(ctx):
            send = href(ctx, np.zeros(4)) if ctx.rank == 0 else None
            coll.scatter(mpi.comm_world(ctx.rank), send, href(ctx, np.zeros(4)))

        with pytest.raises(CommunicationError, match="size\\*block"):
            run_spmd(w, prog)


class TestGather:
    def test_blocks_arrive_in_rank_order(self):
        w, mpi = make_mpi()
        out = {}

        def prog(ctx):
            comm = mpi.comm_world(ctx.rank)
            send = np.full(4, float(ctx.rank))
            recv = np.zeros(32) if ctx.rank == 5 else None
            coll.gather(
                comm,
                href(ctx, send),
                None if recv is None else href(ctx, recv),
                root=5,
            )
            if ctx.rank == 5:
                out["v"] = recv.copy()

        run_spmd(w, prog)
        np.testing.assert_array_equal(out["v"], np.repeat(np.arange(8.0), 4))

    def test_scatter_gather_roundtrip(self):
        w, mpi = make_mpi()
        out = {}

        def prog(ctx):
            comm = mpi.comm_world(ctx.rank)
            data = np.arange(16.0) if ctx.rank == 0 else None
            mine = np.zeros(2)
            coll.scatter(
                comm, None if data is None else href(ctx, data), href(ctx, mine)
            )
            mine *= 2
            back = np.zeros(16) if ctx.rank == 0 else None
            coll.gather(
                comm, href(ctx, mine), None if back is None else href(ctx, back)
            )
            if ctx.rank == 0:
                out["v"] = back.copy()

        run_spmd(w, prog)
        np.testing.assert_array_equal(out["v"], np.arange(16.0) * 2)


class TestAlltoall:
    @pytest.mark.parametrize("nodes", [1, 2])  # 4 (pow2) and 8 (pow2) ranks
    def test_transpose_property(self, nodes):
        w, mpi = make_mpi(nodes=nodes)
        out = {}

        def prog(ctx):
            comm = mpi.comm_world(ctx.rank)
            n = comm.size
            send = np.array(
                [ctx.rank * 100 + j for j in range(n)], dtype=np.float64
            )
            recv = np.zeros(n)
            coll.alltoall(comm, href(ctx, send), href(ctx, recv))
            out[ctx.rank] = recv.copy()

        run_spmd(w, prog)
        n = w.nranks
        for r in range(n):
            np.testing.assert_array_equal(
                out[r], np.array([i * 100 + r for i in range(n)], dtype=np.float64)
            )

    def test_non_power_of_two(self):
        w = World(platform_a(with_quirk=False), num_nodes=1, ranks_per_node=3)
        mpi = MpiWorld(w)
        out = {}

        def prog(ctx):
            comm = mpi.comm_world(ctx.rank)
            send = np.array([ctx.rank * 10 + j for j in range(3)], dtype=np.float64)
            recv = np.zeros(3)
            coll.alltoall(comm, href(ctx, send), href(ctx, recv))
            out[ctx.rank] = recv.copy()

        run_spmd(w, prog)
        for r in range(3):
            np.testing.assert_array_equal(
                out[r], np.array([i * 10 + r for i in range(3)], dtype=np.float64)
            )

    def test_size_mismatch_rejected(self):
        w, mpi = make_mpi(nodes=1)

        def prog(ctx):
            coll.alltoall(
                mpi.comm_world(ctx.rank),
                href(ctx, np.zeros(4)),
                href(ctx, np.zeros(8)),
            )

        with pytest.raises(CommunicationError, match="match"):
            run_spmd(w, prog)


class TestScopedFence:
    def test_group_fence_completes_only_group_targets(self):
        """ompx_fence(group) drains ops to group members; ops to other
        ranks stay pending (§3.3's scoped synchronization)."""
        w = World(platform_a(with_quirk=False), num_nodes=2)
        DiompRuntime(w)
        stats = {}

        def prog(ctx):
            diomp = ctx.diomp
            sub = diomp.group_split(diomp.world_group, 0 if ctx.rank < 4 else 1)
            g = diomp.alloc(8 * MiB, virtual=True)
            diomp.barrier()
            if ctx.rank == 0:
                diomp.put(1, g, g.memref())  # member of my group
                diomp.put(5, g, g.memref())  # other group
                diomp.fence(group=sub)
                stats["pending_after_scoped"] = diomp.rma.pending_ops
                diomp.fence()
                stats["pending_after_full"] = diomp.rma.pending_ops
            diomp.barrier()

        run_spmd(w, prog)
        assert stats["pending_after_scoped"] == 1
        assert stats["pending_after_full"] == 0

    def test_scoped_fence_faster_than_full(self):
        """Fencing only nearby targets returns before a slow far put."""
        w = World(platform_a(with_quirk=False), num_nodes=2)
        DiompRuntime(w)
        times = {}

        def prog(ctx):
            diomp = ctx.diomp
            sub = diomp.group_split(diomp.world_group, 0 if ctx.rank < 4 else 1)
            g = diomp.alloc(32 * MiB, virtual=True)
            diomp.barrier()
            if ctx.rank == 0:
                # Warm the IPC path so timing is pure transfer.
                diomp.put(1, g, g.memref(0, 1024))
                diomp.fence()
                t0 = ctx.sim.now
                diomp.put(1, g, g.memref())  # fast NVLink
                diomp.put(4, g, g.memref())  # slow Slingshot
                diomp.fence(group=sub)
                times["scoped"] = ctx.sim.now - t0
                diomp.fence()
                times["full"] = ctx.sim.now - t0
            diomp.barrier()

        run_spmd(w, prog)
        assert times["scoped"] < times["full"]
