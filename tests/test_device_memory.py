"""Tests for device memory spaces and buffers."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.device import DeviceMemorySpace
from repro.util.errors import AllocationError, DeviceError
from repro.util.units import KiB, MiB


class TestAllocation:
    def test_allocations_do_not_overlap(self):
        space = DeviceMemorySpace(1 * MiB)
        a = space.allocate(1000)
        b = space.allocate(2000)
        assert a.end <= b.address or b.end <= a.address

    def test_capacity_enforced(self):
        space = DeviceMemorySpace(1 * KiB)
        space.allocate(512)
        with pytest.raises(AllocationError, match="out of device memory"):
            space.allocate(600)

    def test_free_returns_capacity(self):
        space = DeviceMemorySpace(1 * KiB)
        a = space.allocate(1024)
        space.free(a)
        assert space.free_bytes == 1 * KiB
        space.allocate(1024)  # fits again

    def test_double_free_rejected(self):
        space = DeviceMemorySpace(1 * KiB)
        a = space.allocate(10)
        space.free(a)
        with pytest.raises(AllocationError, match="double free"):
            space.free(a)

    def test_free_on_wrong_space_rejected(self):
        s1 = DeviceMemorySpace(1 * KiB)
        s2 = DeviceMemorySpace(1 * KiB)
        a = s1.allocate(10)
        with pytest.raises(AllocationError, match="wrong device"):
            s2.free(a)

    def test_zero_size_rejected(self):
        space = DeviceMemorySpace(1 * KiB)
        with pytest.raises(AllocationError):
            space.allocate(0)

    def test_virtual_allocation_counts_capacity(self):
        space = DeviceMemorySpace(1 * MiB)
        v = space.allocate(512 * KiB, virtual=True)
        assert v.is_virtual
        assert space.live_bytes == 512 * KiB


class TestBufferAccess:
    def test_write_read_roundtrip(self):
        space = DeviceMemorySpace(1 * KiB)
        buf = space.allocate(64)
        buf.write(8, b"hello")
        assert buf.read(8, 5) == b"hello"

    def test_typed_view_shares_storage(self):
        space = DeviceMemorySpace(1 * KiB)
        buf = space.allocate(80)
        arr = buf.as_array(np.float64, count=10)
        arr[:] = np.arange(10.0)
        again = buf.as_array(np.float64, count=10)
        np.testing.assert_array_equal(again, np.arange(10.0))

    def test_view_with_offset(self):
        space = DeviceMemorySpace(1 * KiB)
        buf = space.allocate(64)
        buf.as_array(np.int32, count=4, offset=16)[:] = [1, 2, 3, 4]
        raw = np.frombuffer(buf.read(16, 16), dtype=np.int32)
        np.testing.assert_array_equal(raw, [1, 2, 3, 4])

    def test_out_of_bounds_rejected(self):
        space = DeviceMemorySpace(1 * KiB)
        buf = space.allocate(16)
        with pytest.raises(DeviceError, match="out-of-bounds"):
            buf.read(10, 10)
        with pytest.raises(DeviceError, match="out-of-bounds"):
            buf.write(-1, b"x")

    def test_use_after_free_rejected(self):
        space = DeviceMemorySpace(1 * KiB)
        buf = space.allocate(16)
        space.free(buf)
        with pytest.raises(DeviceError, match="use-after-free"):
            buf.read(0, 1)

    def test_virtual_buffer_rejects_data_access(self):
        space = DeviceMemorySpace(1 * MiB)
        v = space.allocate(1024, virtual=True)
        with pytest.raises(DeviceError, match="virtual"):
            v.read(0, 1)
        with pytest.raises(DeviceError, match="virtual"):
            v.as_array(np.float64)

    def test_copy_within_device(self):
        space = DeviceMemorySpace(1 * KiB)
        a = space.allocate(32)
        b = space.allocate(32)
        a.write(0, bytes(range(32)))
        b.copy_within_device(4, a, 8, 16)
        assert b.read(4, 16) == bytes(range(8, 24))

    def test_copy_between_virtual_is_noop(self):
        space = DeviceMemorySpace(1 * MiB)
        a = space.allocate(1024, virtual=True)
        b = space.allocate(1024, virtual=True)
        b.copy_within_device(0, a, 0, 512)  # timing-only, no error

    def test_copy_mixed_real_virtual_rejected(self):
        space = DeviceMemorySpace(1 * MiB)
        a = space.allocate(1024, virtual=True)
        b = space.allocate(1024)
        with pytest.raises(DeviceError, match="real and virtual"):
            b.copy_within_device(0, a, 0, 512)

    def test_cross_space_copy_rejected(self):
        s1 = DeviceMemorySpace(1 * KiB)
        s2 = DeviceMemorySpace(1 * KiB)
        a, b = s1.allocate(16), s2.allocate(16)
        with pytest.raises(DeviceError, match="across devices"):
            b.copy_within_device(0, a, 0, 8)


class TestAddressResolution:
    def test_resolve_start_middle_last(self):
        space = DeviceMemorySpace(1 * KiB)
        buf = space.allocate(100)
        assert space.resolve(buf.address) == (buf, 0)
        assert space.resolve(buf.address + 50) == (buf, 50)
        assert space.resolve(buf.address + 99) == (buf, 99)

    def test_resolve_end_is_out(self):
        space = DeviceMemorySpace(1 * KiB)
        buf = space.allocate(100)
        with pytest.raises(DeviceError, match="not in any live allocation"):
            space.resolve(buf.end)

    def test_resolve_after_free(self):
        space = DeviceMemorySpace(1 * KiB)
        buf = space.allocate(100)
        space.free(buf)
        with pytest.raises(DeviceError):
            space.resolve(buf.address)

    def test_resolve_picks_right_allocation(self):
        space = DeviceMemorySpace(1 * MiB)
        bufs = [space.allocate(64) for _ in range(10)]
        for buf in bufs:
            got, off = space.resolve(buf.address + 13)
            assert got is buf and off == 13

    @given(st.lists(st.integers(min_value=1, max_value=4096), min_size=1, max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_property_resolution_consistent(self, sizes):
        """Every in-range address resolves to its own allocation and the
        correct offset, for arbitrary allocation sequences."""
        space = DeviceMemorySpace(64 * MiB)
        bufs = [space.allocate(s, virtual=True) for s in sizes]
        for buf in bufs:
            for probe in {0, buf.size // 2, buf.size - 1}:
                got, off = space.resolve(buf.address + probe)
                assert got is buf
                assert off == probe
