"""Edge-case and error-path coverage across the stack."""

import numpy as np
import pytest

from repro.apps import CannonConfig, cannon_reference, run_cannon
from repro.cluster import MemRef, World, run_spmd
from repro.core import DiompRuntime
from repro.core.directives import execute_pragma
from repro.gasnet import GasnetConduit
from repro.hardware import platform_a
from repro.mpi import MpiWorld, Window
from repro.sim import Tracer
from repro.util.errors import CommunicationError
from repro.util.units import KiB, MiB


class TestSpaceSegmentResolution:
    def test_range_spanning_allocations_rejected(self):
        """A remote access must land inside ONE live allocation —
        reading across two adjacent segment allocations is a bug."""
        w = World(platform_a(with_quirk=False), num_nodes=1)
        DiompRuntime(w)

        def prog(ctx):
            a = ctx.diomp.alloc(1 * KiB)
            ctx.diomp.alloc(1 * KiB)  # adjacent allocation
            ctx.diomp.barrier()
            if ctx.rank == 0:
                # Address range starting inside rank 1's copy of `a`
                # and running into the adjacent allocation.
                remote_seg = ctx.diomp.runtime.segment_of(1, 0)
                addr = remote_seg.address_of(a.offset) + 512
                dst = np.zeros(1024, dtype=np.uint8)
                ctx.diomp.get(1, addr, MemRef.host(ctx.node, dst))
            ctx.diomp.barrier()

        with pytest.raises(CommunicationError, match="spans"):
            run_spmd(w, prog)

    def test_access_to_freed_segment_memory_rejected(self):
        w = World(platform_a(with_quirk=False), num_nodes=1)
        DiompRuntime(w)

        def prog(ctx):
            g = ctx.diomp.alloc(1 * KiB)
            seg_addr = ctx.diomp.segment(0).address_of(g.offset)
            ctx.diomp.free(g)
            ctx.diomp.barrier()
            if ctx.rank == 0:
                dst = np.zeros(16, dtype=np.uint8)
                ctx.diomp.get(1, seg_addr, MemRef.host(ctx.node, dst))
            ctx.diomp.barrier()

        with pytest.raises(Exception):
            run_spmd(w, prog)


class TestGasnetPendingState:
    def test_pending_count_drains_over_time(self):
        w = World(platform_a(with_quirk=False), num_nodes=2)
        conduit = GasnetConduit(w)
        bufs = []
        for ctx in w.ranks:
            b = ctx.device.malloc(8 * MiB, virtual=True)
            conduit.client(ctx.rank).attach_segment(MemRef.device(b))
            bufs.append(b)
        out = {}

        def prog(ctx):
            if ctx.rank == 0:
                client = conduit.client(0)
                src = MemRef.device(ctx.device.malloc(8 * MiB, virtual=True))
                client.put_nb(4, bufs[4].address, src)
                out["right_after"] = client.pending_count
                ctx.sim.sleep(1.0)  # far beyond the transfer time
                out["later"] = client.pending_count
                client.sync_all()

        run_spmd(w, prog)
        assert out == {"right_after": 1, "later": 0}


class TestOmpcclErrors:
    def test_buffer_count_must_match_devices(self):
        w = World(platform_a(with_quirk=False), num_nodes=1, devices_per_rank=4)
        DiompRuntime(w)

        def prog(ctx):
            one = MemRef.device(ctx.devices[0].malloc(8))
            ctx.diomp.allreduce([one], [one])  # needs 4 buffers

        with pytest.raises(CommunicationError, match="one buffer per"):
            run_spmd(w, prog)

    def test_barrier_on_foreign_group_rejected(self):
        """A rank outside a group cannot synchronize on it."""
        w = World(platform_a(with_quirk=False), num_nodes=2)
        DiompRuntime(w)
        shared = {}

        def prog(ctx):
            if ctx.rank < 4:
                shared["g"] = ctx.diomp.group_create([0, 1, 2, 3])
            ctx.world.global_barrier.wait()
            if ctx.rank == 7:
                with pytest.raises(CommunicationError, match="does not belong"):
                    ctx.diomp.barrier(group=shared["g"])
            ctx.world.global_barrier.wait()

        run_spmd(w, prog)


class TestDirectiveExecution:
    def test_device_reduce_pragma(self):
        w = World(platform_a(with_quirk=False), num_nodes=1)
        DiompRuntime(w)
        out = {}

        def prog(ctx):
            s = ctx.diomp.alloc(8)
            r = ctx.diomp.alloc(8)
            s.typed(np.float64)[:] = 3.0
            ctx.diomp.barrier()
            execute_pragma(
                ctx.diomp,
                "#pragma ompx target device_reduce(s, r, root=1)",
                env={"s": s, "r": r},
            )
            out[ctx.rank] = r.typed(np.float64)[0]

        run_spmd(w, prog)
        assert out[1] == 12.0
        assert out[0] == 0.0

    def test_barrier_pragma_with_group(self):
        w = World(platform_a(with_quirk=False), num_nodes=1)
        DiompRuntime(w)

        def prog(ctx):
            sub = ctx.diomp.group_split(ctx.diomp.world_group, 0)
            execute_pragma(
                ctx.diomp, "#pragma ompx barrier(grp)", env={"grp": sub}
            )

        run_spmd(w, prog)

    def test_case_insensitive_pragma(self):
        w = World(platform_a(with_quirk=False), num_nodes=1)
        DiompRuntime(w)

        def prog(ctx):
            execute_pragma(ctx.diomp, "#PRAGMA OMPX FENCE")

        run_spmd(w, prog)


class TestCannonVariants:
    def test_float32_cannon(self):
        w = World(platform_a(with_quirk=False), num_nodes=1)
        cfg = CannonConfig(n=32, execute=True, dtype=np.float32)
        res = run_cannon(w, cfg, impl="diomp")
        c = np.concatenate(
            [r["C"] for r in sorted(res.results, key=lambda r: r["rank"])]
        )
        np.testing.assert_allclose(c, cannon_reference(cfg, 4), rtol=1e-4)

    def test_lower_gemm_efficiency_slower(self):
        def t(eff):
            w = World(platform_a(with_quirk=False), num_nodes=1)
            cfg = CannonConfig(n=8192, execute=False, gemm_efficiency=eff)
            return max(
                r["elapsed"] for r in run_cannon(w, cfg, impl="diomp").results
            )

        assert t(0.9) < t(0.45)


class TestMultipleWindows:
    def test_distinct_windows_isolated(self):
        w = World(platform_a(with_quirk=False), num_nodes=1)
        mpi = MpiWorld(w)
        bufs = {}

        def prog(ctx):
            comm = mpi.comm_world(ctx.rank)
            b1 = ctx.device.malloc(64)
            b2 = ctx.device.malloc(64)
            bufs[ctx.rank] = (b1, b2)
            Window.create(comm, MemRef.device(b1), win_key=1)
            w2 = Window.create(comm, MemRef.device(b2), win_key=2)
            if ctx.rank == 0:
                src = ctx.device.malloc(64)
                src.as_array(np.float64)[:] = 5.0
                w2.lock(1)
                w2.put(MemRef.device(src), target=1)
                w2.unlock(1)
            ctx.world.global_barrier.wait()

        run_spmd(w, prog)
        b1, b2 = bufs[1]
        assert (b2.as_array(np.float64) == 5.0).all()
        assert (b1.as_array(np.float64) == 0.0).all()  # other window untouched


class TestWorldTracer:
    def test_custom_tracer_injected(self):
        tracer = Tracer()
        w = World(platform_a(with_quirk=False), num_nodes=1, tracer=tracer)
        assert w.tracer is tracer

        def prog(ctx):
            ctx.device.malloc(64)

        run_spmd(w, prog)
        assert tracer.count("device", "malloc") == w.nranks  # one per rank
