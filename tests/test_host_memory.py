"""Tests for host-side global memory (omp_alloc) and host compute."""

import numpy as np
import pytest

from repro.cluster import MemRef, World, run_spmd
from repro.core import DiompRuntime
from repro.hardware import platform_a
from repro.omptarget import host_parallel_for, host_threads
from repro.util.errors import CommunicationError, ConfigurationError


def make(nodes=2):
    w = World(platform_a(with_quirk=False), num_nodes=nodes)
    return w, DiompRuntime(w)


class TestHostAlloc:
    def test_symmetric_offsets(self):
        w, rt = make()
        offs = {}

        def prog(ctx):
            h1 = ctx.diomp.alloc_host(1024)
            h2 = ctx.diomp.alloc_host(2048)
            offs[ctx.rank] = (h1.offset, h2.offset)

        run_spmd(w, prog)
        assert len(set(offs.values())) == 1

    def test_size_mismatch_rejected(self):
        w, rt = make()

        def prog(ctx):
            ctx.diomp.alloc_host(1024 if ctx.rank else 512)

        with pytest.raises(CommunicationError, match="mismatch"):
            run_spmd(w, prog)

    def test_typed_access(self):
        w, rt = make(nodes=1)

        def prog(ctx):
            h = ctx.diomp.alloc_host(64)
            h.typed(np.float64)[:] = ctx.rank
            assert (h.typed(np.float64) == ctx.rank).all()

        run_spmd(w, prog)

    def test_free_and_reuse(self):
        w, rt = make(nodes=1)
        offs = {}

        def prog(ctx):
            h = ctx.diomp.alloc_host(1024)
            first = h.offset
            ctx.diomp.free_host(h)
            offs[ctx.rank] = (first, ctx.diomp.alloc_host(1024).offset)

        run_spmd(w, prog)
        for a, b in offs.values():
            assert a == b

    def test_use_after_free_rejected(self):
        w, rt = make(nodes=1)

        def prog(ctx):
            h = ctx.diomp.alloc_host(64)
            ctx.diomp.free_host(h)
            h.memref()

        with pytest.raises(Exception, match="freed"):
            run_spmd(w, prog)


class TestHostRma:
    def test_put_to_remote_host(self):
        w, rt = make()
        bufs = {}

        def prog(ctx):
            h = ctx.diomp.alloc_host(64)
            bufs[ctx.rank] = h
            ctx.diomp.barrier()
            if ctx.rank == 0:
                src = np.full(8, 3.5)
                ctx.diomp.put(5, h, MemRef.host(ctx.node, src))
                ctx.diomp.fence()
            ctx.diomp.barrier()

        run_spmd(w, prog)
        np.testing.assert_allclose(bufs[5].typed(np.float64), 3.5)

    def test_get_from_remote_host(self):
        w, rt = make()
        out = {}

        def prog(ctx):
            h = ctx.diomp.alloc_host(64)
            h.typed(np.int64)[:] = ctx.rank * 100
            ctx.diomp.barrier()
            if ctx.rank == 1:
                dst = np.zeros(8, dtype=np.int64)
                ctx.diomp.get(6, h, MemRef.host(ctx.node, dst))
                ctx.diomp.fence()
                out["v"] = dst[0]
            ctx.diomp.barrier()

        run_spmd(w, prog)
        assert out["v"] == 600

    def test_device_to_host_put(self):
        """GPU-resident data pushed straight into a remote host buffer."""
        w, rt = make()
        bufs = {}

        def prog(ctx):
            h = ctx.diomp.alloc_host(64)
            bufs[ctx.rank] = h
            ctx.diomp.barrier()
            if ctx.rank == 0:
                dev = ctx.device.malloc(64)
                dev.as_array(np.float64)[:] = 9.0
                ctx.diomp.put(4, h, MemRef.device(dev))
                ctx.diomp.fence()
            ctx.diomp.barrier()

        run_spmd(w, prog)
        np.testing.assert_allclose(bufs[4].typed(np.float64), 9.0)

    def test_out_of_range_rejected(self):
        w, rt = make(nodes=1)

        def prog(ctx):
            h = ctx.diomp.alloc_host(64)
            if ctx.rank == 0:
                ctx.diomp.put(
                    1, h, MemRef.host(ctx.node, np.zeros(16)), target_offset=32
                )

        with pytest.raises(CommunicationError, match="exceeds host buffer"):
            run_spmd(w, prog)


class TestHostCompute:
    def test_thread_share_by_deployment(self):
        """§3.3: one rank per GPU partitions the socket; single-process
        multi-GPU keeps all cores."""
        w_partitioned = World(platform_a(), num_nodes=1)  # 4 ranks/node
        w_whole = World(platform_a(), num_nodes=1, devices_per_rank=4)
        cores = platform_a().node.cpu.cores
        assert w_partitioned.ranks[0].host_threads == cores // 4
        assert w_whole.ranks[0].host_threads == cores

    def test_parallel_for_scales_with_threads(self):
        w = World(platform_a(), num_nodes=1, devices_per_rank=4)
        DiompRuntime(w)
        times = {}

        def prog(ctx):
            times["wide"] = host_parallel_for(ctx, 10**7, 10.0)
            times["narrow"] = host_parallel_for(ctx, 10**7, 10.0, threads=16)

        run_spmd(w, prog)
        assert times["wide"] * 3 < times["narrow"]  # 64 vs 16 threads

    def test_oversubscription_rejected(self):
        w = World(platform_a(), num_nodes=1)  # 4 ranks -> 16 cores each
        DiompRuntime(w)

        def prog(ctx):
            host_parallel_for(ctx, 100, 1.0, threads=64)

        with pytest.raises(ConfigurationError, match="oversubscribe"):
            run_spmd(w, prog)

    def test_host_threads_helper_matches_context(self):
        w = World(platform_a(), num_nodes=1)
        assert host_threads(w.ranks[0]) == w.ranks[0].host_threads
