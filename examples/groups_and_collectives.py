#!/usr/bin/env python
"""DiOMP Groups, group-scoped collectives, and the pragma front-end.

Demonstrates §3.3 of the paper on a 2-node cluster:

* splitting the world group by node (``ompx_group_t`` split),
* group-scoped barriers and allreduces (no global synchronization),
* group recomposition (merge) for a later program phase,
* the prototype ``#pragma ompx target device_bcast`` directive,
* the single-process multi-GPU deployment mode: one rank drives all
  four GPUs of its node, and OMPCCL still runs collectives over every
  device.

Run:  python examples/groups_and_collectives.py
"""

import numpy as np

from repro.cluster import MemRef, World, run_spmd
from repro.core import DiompRuntime
from repro.core.directives import execute_pragma
from repro.hardware import platform_a


def phase_groups() -> None:
    print("== per-node groups, then recomposition ==")
    world = World(platform_a(), num_nodes=2)
    DiompRuntime(world)

    node_groups = {}

    def program(ctx):
        diomp = ctx.diomp
        # Phase 1: split the world by node and reduce within each node.
        node_group = diomp.group_split(diomp.world_group, color=ctx.node)
        node_groups[ctx.node] = node_group
        send, recv = diomp.alloc(8), diomp.alloc(8)
        send.typed(np.float64)[:] = float(ctx.rank)
        diomp.barrier()
        diomp.allreduce(send, recv, group=node_group)
        node_sum = recv.typed(np.float64)[0]
        diomp.barrier()
        # Phase 2: recompose the two node groups into one logical group
        # and broadcast node 0's result with the pragma front-end.
        merged = diomp.group_merge(node_groups[0], node_groups[1])
        execute_pragma(
            diomp,
            "#pragma ompx target device_bcast(result, grp, root=0)",
            env={"result": recv, "grp": merged},
        )
        return ctx.rank, node_sum, recv.typed(np.float64)[0]

    for rank, node_sum, final in run_spmd(world, program).results:
        print(f"  rank {rank}: node-local sum={node_sum:>4.0f}  "
              f"after global bcast={final:.0f}")


def phase_multi_gpu() -> None:
    print("\n== single-process multi-GPU (one rank drives 4 GPUs) ==")
    world = World(platform_a(), num_nodes=2, devices_per_rank=4)
    DiompRuntime(world)

    def program(ctx):
        diomp = ctx.diomp
        sends, recvs = [], []
        for d, dev in enumerate(ctx.devices):
            s = dev.malloc(8)
            s.as_array(np.float64)[:] = 10.0 ** (ctx.rank * 4 + d)
            sends.append(MemRef.device(s))
            recvs.append(MemRef.device(dev.malloc(8)))
        diomp.barrier()
        # One call drives all four local device slots concurrently;
        # the communicator spans all 8 GPUs of the job (§3.3).
        diomp.allreduce(sends, recvs)
        return ctx.rank, [r.typed(np.float64)[0] for r in recvs]

    for rank, values in run_spmd(world, program).results:
        print(f"  rank {rank}: every device sees {values[0]:.0f} "
              "(digit i set by device slot i)")


if __name__ == "__main__":
    phase_groups()
    phase_multi_gpu()
