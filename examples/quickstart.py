#!/usr/bin/env python
"""Quickstart: a 2-node DiOMP-Offloading "hello world".

Builds a simulated Perlmutter-class cluster (Platform A), starts the
DiOMP runtime, and walks through the core API on 8 ranks:

1. collective symmetric allocation in the PGAS device space,
2. one-sided ``ompx_put`` to a neighbour + ``ompx_fence``,
3. a device-side ``ompx_allreduce`` through OMPCCL.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.cluster import World, run_spmd
from repro.core import DiompRuntime
from repro.hardware import platform_a


def main() -> None:
    # A 2-node cluster: 4 NVIDIA A100s per node, one rank per GPU.
    world = World(platform_a(), num_nodes=2)
    DiompRuntime(world)  # installs ctx.diomp on every rank

    def program(ctx):
        diomp = ctx.diomp
        # Symmetric allocation: every rank gets the same offset, so a
        # remote address is just base + offset (no registration calls,
        # no window objects).
        outbox = diomp.alloc(8 * 8)  # eight float64 per rank
        inbox = diomp.alloc(8 * 8)
        outbox.typed(np.float64)[:] = float(ctx.rank)
        diomp.barrier()

        # One-sided: push my values into my right neighbour's inbox
        # (distinct source and target buffers keep one-sided semantics
        # clean: nobody writes a buffer someone else is reading).
        right = (ctx.rank + 1) % ctx.nranks
        diomp.put(right, inbox, outbox.memref())
        diomp.fence()
        diomp.barrier()
        received = inbox.typed(np.float64)[0]

        # Device-side collective via OMPCCL (NCCL underneath here).
        send = diomp.alloc(8)
        recv = diomp.alloc(8)
        send.typed(np.float64)[:] = 1.0
        diomp.barrier()
        diomp.allreduce(send, recv)
        total = recv.typed(np.float64)[0]
        return ctx.rank, received, total

    result = run_spmd(world, program)
    print(f"virtual time elapsed: {result.elapsed * 1e6:.1f} us\n")
    print("rank  received-from-left  allreduce-total")
    for rank, received, total in result.results:
        print(f"{rank:>4}  {received:>18.1f}  {total:>15.1f}")
    expected = float(world.nranks)
    assert all(t == expected for _r, _v, t in result.results)
    assert all(v == float((r - 1) % world.nranks) for r, v, _t in result.results)
    print("\nOK: one-sided puts landed and the allreduce summed to"
          f" {expected:.0f} on every device.")


if __name__ == "__main__":
    main()
