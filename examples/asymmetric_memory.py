#!/usr/bin/env python
"""Asymmetric global memory and the remote pointer cache (paper §3.2).

Each rank allocates a *different* amount of global device memory (a
ragged distributed array).  Remote access then needs the second-level
pointer protocol: the first access to a peer dereferences its pointer
wrapper over the network (two communication steps); later accesses hit
the remote pointer cache (one step).  The example measures both and
prints the cache's effect, plus the OpenMP-mapped-memory integration:
an array mapped with ``target enter data`` is remotely readable with
zero extra registration (Fig. 1b).

Run:  python examples/asymmetric_memory.py
"""

import numpy as np

from repro.cluster import MemRef, World, run_spmd
from repro.core import DiompRuntime
from repro.hardware import platform_a
from repro.omptarget import Map, MapType


def main() -> None:
    world = World(platform_a(with_quirk=False), num_nodes=2)
    DiompRuntime(world)

    def program(ctx):
        diomp = ctx.diomp
        # Ragged allocation: rank r holds (r+1) KiB.
        abuf = diomp.alloc_asymmetric((ctx.rank + 1) * 1024)
        abuf.typed(np.uint8)[:] = ctx.rank
        diomp.barrier()

        stats = {}
        if ctx.rank == 0:
            dst = np.zeros(4 * 1024, dtype=np.uint8)
            # Cold access: fetches rank 3's second-level pointer first.
            t0 = ctx.sim.now
            diomp.get(3, abuf, MemRef.host(ctx.node, dst))
            diomp.fence()
            cold = ctx.sim.now - t0
            # Warm access: the pointer comes from the cache.
            t0 = ctx.sim.now
            diomp.get(3, abuf, MemRef.host(ctx.node, dst))
            diomp.fence()
            warm = ctx.sim.now - t0
            assert (dst == 3).all()
            stats = {
                "cold_us": cold * 1e6,
                "warm_us": warm * 1e6,
                "fetches": diomp.rma.pointer_fetches,
                "hits": diomp.pointer_cache.hits,
            }
        diomp.barrier()

        # OpenMP-mapped memory is born remotely accessible: map an
        # array, publish its device address, let a peer read it.
        arr = np.full(8, float(100 + ctx.rank))
        diomp.omp.target_enter_data([Map(arr, MapType.TO)])
        address = diomp.omp.use_device_ptr(arr)
        ctx.world.tracer.emit("example", "addr", rank=ctx.rank, addr=address)
        diomp.barrier()
        if ctx.rank == 5:
            peer_addr = next(
                r.payload["addr"]
                for r in ctx.world.tracer.select("example", "addr")
                if r.payload["rank"] == 2
            )
            peek = np.zeros(8)
            diomp.get(2, peer_addr, MemRef.host(ctx.node, peek))
            diomp.fence()
            assert (peek == 102.0).all()
            stats["mapped_peek"] = peek[0]
        diomp.barrier()
        return stats

    results = run_spmd(world, program).results
    s = results[0]
    print(f"cold asymmetric get: {s['cold_us']:.2f} us "
          "(pointer fetch + data transfer)")
    print(f"warm asymmetric get: {s['warm_us']:.2f} us "
          "(cache hit, data transfer only)")
    print(f"pointer fetches over the wire: {s['fetches']}, "
          f"cache hits: {s['hits']}")
    print("rank 5 read rank 2's OpenMP-mapped array: "
          f"value {results[5]['mapped_peek']:.0f} (zero extra registration)")


if __name__ == "__main__":
    main()
