#!/usr/bin/env python
"""Minimod wave propagation with DiOMP halo exchange (paper §4.5).

Propagates an acoustic wave from a point source on a distributed grid,
exchanging stencil halos with one-sided ``ompx_put`` (the paper's
Listing 1 pattern), and verifies the distributed field against a
single-domain reference.  Then compares DiOMP vs MPI halo exchange at
a larger (timing-only) grid on one node — the configuration where the
paper's intra-node advantage is largest.

Run:  python examples/minimod_wave.py
"""

import numpy as np

from repro.apps import MinimodConfig, minimod_reference, run_minimod
from repro.cluster import World
from repro.hardware import platform_a
from repro.util.units import format_time


def correctness_pass() -> None:
    print("== correctness (32x12x12 grid, 6 steps, 8 ranks / 2 nodes) ==")
    cfg = MinimodConfig(nx=32, ny=12, nz=12, steps=6)
    world = World(platform_a(with_quirk=False), num_nodes=2)
    res = run_minimod(world, cfg, impl="diomp")
    u = np.concatenate(
        [r["u"] for r in sorted(res.results, key=lambda r: r["rank"])]
    )
    ref = minimod_reference(cfg)
    np.testing.assert_allclose(u, ref, rtol=1e-5, atol=1e-7)
    wavefront = np.count_nonzero(np.abs(u) > 1e-12)
    print("  wavefield matches the single-domain reference "
          f"({wavefront} active cells after {cfg.steps} steps)")


def performance_pass() -> None:
    print("\n== performance (480^3 grid, 10 steps, single node, 4 GPUs) ==")
    times = {}
    for impl in ("diomp", "mpi"):
        world = World(platform_a(with_quirk=False), num_nodes=1)
        cfg = MinimodConfig(nx=480, ny=480, nz=480, steps=10, execute=False)
        res = run_minimod(world, cfg, impl=impl)
        times[impl] = max(r["elapsed"] for r in res.results)
        print(f"  {impl:>5}: {format_time(times[impl])}")
    print(f"  DiOMP is {times['mpi'] / times['diomp']:.2f}x faster intra-node "
          "(IPC halo puts vs host-staged MPI messages)")


if __name__ == "__main__":
    correctness_pass()
    performance_pass()
