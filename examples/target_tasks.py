#!/usr/bin/env python
"""Deferred target tasks: the paper's §5 task-parallel extension.

Builds a four-stage pipeline of ``target nowait depend(...)`` tasks on
each rank — produce → two independent filters → join — and shows that

* the dependence graph orders execution correctly (results verified),
* the two independent middle stages overlap on separate device
  streams (hidden helper threads), and
* the per-rank join results feed a DiOMP allreduce, composing the
  task extension with the PGAS core.

Run:  python examples/target_tasks.py
"""

import numpy as np

from repro.cluster import World, run_spmd
from repro.core import DiompRuntime
from repro.device.kernel import KernelCost
from repro.hardware import platform_a
from repro.omptarget import Map, MapType, TargetTaskQueue
from repro.util.units import format_time


def main() -> None:
    world = World(platform_a(with_quirk=False), num_nodes=1)
    DiompRuntime(world)
    heavy = KernelCost(flops=2e9, bytes_moved=0)  # ~0.25 ms each

    def program(ctx):
        diomp = ctx.diomp
        q = TargetTaskQueue(diomp.omp)
        src = np.zeros(16)
        left = np.zeros(16)
        right = np.zeros(16)
        joined = np.zeros(16)

        t0 = ctx.sim.now
        q.submit(
            "produce",
            heavy,
            maps=[Map(src, MapType.TOFROM)],
            body=lambda v: v.__iadd__(ctx.rank + 1),
            depends_out=[src],
        )
        # Two independent consumers: they overlap on distinct streams.
        q.submit(
            "filter-left",
            heavy,
            maps=[Map(src, MapType.TO), Map(left, MapType.FROM)],
            body=lambda s, l: l.__iadd__(s * 10),
            depends_in=[src],
            depends_out=[left],
        )
        q.submit(
            "filter-right",
            heavy,
            maps=[Map(src, MapType.TO), Map(right, MapType.FROM)],
            body=lambda s, r: r.__iadd__(s * 100),
            depends_in=[src],
            depends_out=[right],
        )
        q.submit(
            "join",
            heavy,
            maps=[
                Map(left, MapType.TO),
                Map(right, MapType.TO),
                Map(joined, MapType.FROM),
            ],
            body=lambda a, b, j: j.__iadd__(a + b),
            depends_in=[left, right],
            depends_out=[joined],
        )
        q.taskwait()
        pipeline_time = ctx.sim.now - t0

        # Compose with the PGAS core: reduce the join results.
        send, recv = diomp.alloc(8), diomp.alloc(8)
        send.typed(np.float64)[:] = joined[0]
        diomp.barrier()
        diomp.allreduce(send, recv)
        return ctx.rank, joined[0], recv.typed(np.float64)[0], pipeline_time

    results = run_spmd(world, program).results
    one_kernel = heavy.duration_on(platform_a().node.gpu)
    print("rank  joined  allreduce  pipeline time")
    for rank, joined, total, t in results:
        print(f"{rank:>4}  {joined:>6.0f}  {total:>9.0f}  {format_time(t)}")
    expected = sum(110 * (r + 1) for r in range(world.nranks))
    assert all(total == expected for _r, _j, total, _t in results)
    t = results[0][3]
    print(f"\n4-task diamond ran in ~{t / one_kernel:.1f} kernel times "
          "(3 levels; the two filters overlapped).")


if __name__ == "__main__":
    main()
