#!/usr/bin/env python
"""Distributed matrix multiplication with ring exchange (paper §4.4).

Runs the Cannon-style 1-D stripe algorithm twice on a 2-node Platform-A
cluster — once with the DiOMP one-sided runtime, once with the
MPI+OpenMP-target baseline — verifies both against numpy, and compares
their simulated execution time at a paper-scale problem.

Run:  python examples/cannon_matmul.py
      python examples/cannon_matmul.py --profile trace.json   # + Chrome trace
"""

import sys

import numpy as np

from repro.apps import CannonConfig, cannon_reference, run_cannon
from repro.cluster import World
from repro.hardware import platform_a
from repro.util.units import format_time


def correctness_pass() -> None:
    print("== correctness (N=64, real numerics on simulated devices) ==")
    for impl in ("diomp", "mpi"):
        world = World(platform_a(with_quirk=False), num_nodes=2)
        cfg = CannonConfig(n=64, execute=True)
        res = run_cannon(world, cfg, impl=impl)
        c = np.concatenate(
            [r["C"] for r in sorted(res.results, key=lambda r: r["rank"])]
        )
        np.testing.assert_allclose(c, cannon_reference(cfg, world.nranks))
        print(f"  {impl:>5}: C == A @ B verified on {world.nranks} GPUs "
              f"(virtual time {format_time(res.elapsed)})")


def performance_pass() -> None:
    print("\n== performance (N=30240, virtual memory + cost models) ==")
    times = {}
    for impl in ("diomp", "mpi"):
        world = World(platform_a(with_quirk=False), num_nodes=2)
        cfg = CannonConfig(n=30240, execute=False)
        res = run_cannon(world, cfg, impl=impl)
        times[impl] = max(r["elapsed"] for r in res.results)
        print(f"  {impl:>5}: {format_time(times[impl])} on 8 A100s")
    print(f"  DiOMP is {times['mpi'] / times['diomp']:.2f}x faster "
          "(one-sided stripe forwarding + NVLink IPC intra-node)")


def profile_pass(out_path: str) -> None:
    from repro.bench.profile import write_profile

    print(f"\n== profiling (4-rank cannon + asym ping -> {out_path}) ==")
    write_profile(out_path)


def _profile_arg() -> str:
    # Manual scan rather than argparse: the test suite runs this file
    # under pytest's own argv.
    argv = sys.argv[1:]
    for i, arg in enumerate(argv):
        if arg == "--profile" and i + 1 < len(argv):
            return argv[i + 1]
        if arg.startswith("--profile="):
            return arg.split("=", 1)[1]
    return ""


if __name__ == "__main__":
    correctness_pass()
    performance_pass()
    out = _profile_arg()
    if out:
        profile_pass(out)
