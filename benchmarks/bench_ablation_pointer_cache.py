"""Ablation — the remote pointer cache for asymmetric access (§3.2).

Asymmetric buffers need a two-step remote access (fetch the
second-level pointer, then move the data).  The cache removes the
first step after the first access; this bench quantifies the saving.
"""


from conftest import run_once

from repro.bench.report import Table
from repro.cluster import MemRef, World, run_spmd
from repro.core import DiompParams, DiompRuntime
from repro.hardware import platform_a
from repro.util.units import KiB


def _access_time(pointer_cache: bool, accesses: int = 16) -> dict:
    world = World(platform_a(with_quirk=False), num_nodes=2)
    DiompRuntime(world, DiompParams(pointer_cache=pointer_cache))
    out = {}

    def prog(ctx):
        abuf = ctx.diomp.alloc_asymmetric((ctx.rank + 1) * 4 * KiB, virtual=True)
        ctx.diomp.barrier()
        if ctx.rank == 0:
            ref = MemRef.device(ctx.device.malloc(4 * KiB, virtual=True))
            t0 = ctx.sim.now
            for _ in range(accesses):
                ctx.diomp.get(5, abuf, ref)
                ctx.diomp.fence()
            out["per_access"] = (ctx.sim.now - t0) / accesses
            out["fetches"] = ctx.diomp.rma.pointer_fetches
        ctx.diomp.barrier()

    run_spmd(world, prog)
    return out


def _run():
    return {
        "cache_on": _access_time(True),
        "cache_off": _access_time(False),
    }


def test_ablation_pointer_cache(benchmark):
    data = run_once(benchmark, _run)
    table = Table(
        "Ablation - remote pointer cache (16 asymmetric gets of 4 KiB)",
        ["config", "avg access (us)", "pointer fetches"],
    )
    for name, stats in data.items():
        table.add_row(name, f"{stats['per_access'] * 1e6:.2f}", stats["fetches"])
    table.print()
    assert data["cache_on"]["fetches"] == 1
    assert data["cache_off"]["fetches"] == 16
    # Dropping 15 pointer round-trips must show up in latency.
    assert data["cache_on"]["per_access"] < data["cache_off"]["per_access"]
