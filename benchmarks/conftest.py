"""Shared helpers for the figure-reproduction benchmarks.

Every benchmark runs its (deterministic) simulation exactly once via
``benchmark.pedantic(..., rounds=1, iterations=1)`` — the interesting
output is the *simulated* result, which each benchmark prints in the
paper's terms and asserts shape properties on.  Run with ``-s`` to see
the reproduced tables.
"""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Execute ``fn`` once under pytest-benchmark and return its result."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
