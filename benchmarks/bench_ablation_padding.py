"""Ablation — emulating symmetry by padding (§3.2).

The paper: "in memory-abundant scenarios, we encourage developers to
emulate symmetry through manual padding techniques, thereby retaining
the benefits of offset-based address translation."  This bench
measures remote access to ragged per-rank data both ways:

* **asymmetric allocation** — exact sizes, second-level pointers, a
  pointer fetch on first access to each peer,
* **padded symmetric allocation** — every rank allocates the maximum
  size; direct offset translation, no pointer protocol, wasted memory.
"""


from conftest import run_once

from repro.bench.report import Table
from repro.cluster import MemRef, World, run_spmd
from repro.core import DiompParams, DiompRuntime
from repro.hardware import platform_a
from repro.util.units import KiB


def _sweep(style: str, peers: int = 7, block: int = 4 * KiB) -> dict:
    """Rank 0 reads one block from every other rank, twice."""
    world = World(platform_a(with_quirk=False), num_nodes=2)
    DiompRuntime(world, DiompParams())
    out = {}

    def prog(ctx):
        ragged = (ctx.rank + 1) * block
        padded = world.nranks * block
        if style == "asymmetric":
            buf = ctx.diomp.alloc_asymmetric(ragged, virtual=True)
            wasted = 0
        else:
            buf = ctx.diomp.alloc(padded, virtual=True)
            wasted = padded - ragged
        ctx.diomp.barrier()
        if ctx.rank == 0:
            dst = MemRef.device(ctx.device.malloc(block, virtual=True))
            t0 = ctx.sim.now
            for _round in range(2):
                for peer in range(1, world.nranks):
                    ctx.diomp.get(peer, buf, dst)
                ctx.diomp.fence()
            out["elapsed"] = ctx.sim.now - t0
            out["pointer_fetches"] = ctx.diomp.rma.pointer_fetches
            out["wasted_bytes"] = wasted
        ctx.diomp.barrier()

    run_spmd(world, prog)
    return out


def _run():
    return {
        "asymmetric": _sweep("asymmetric"),
        "padded symmetric": _sweep("padded"),
    }


def test_ablation_padding_emulation(benchmark):
    data = run_once(benchmark, _run)
    table = Table(
        "Ablation - ragged data: asymmetric vs padded-symmetric access "
        "(rank 0 reads 4 KiB from 7 peers, 2 rounds)",
        ["allocation", "elapsed (us)", "pointer fetches", "wasted bytes/rank"],
    )
    for name, stats in data.items():
        table.add_row(
            name,
            f"{stats['elapsed'] * 1e6:.2f}",
            stats["pointer_fetches"],
            stats["wasted_bytes"],
        )
    table.print()
    asym, padded = data["asymmetric"], data["padded symmetric"]
    # Padding removes the pointer protocol entirely...
    assert padded["pointer_fetches"] == 0
    assert asym["pointer_fetches"] == 7  # one per peer (then cached)
    # ...and is faster, at the cost of memory.
    assert padded["elapsed"] < asym["elapsed"]
    assert padded["wasted_bytes"] > 0
