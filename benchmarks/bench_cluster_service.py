"""Multi-tenant service load sweep: throughput, p99 wait, SLO alerts.

Drives the :class:`~repro.cluster.service.ClusterService` with the
seeded mixed job stream (Cannon / Minimod / allreduce gangs) at offered
loads from idle to saturated, and reports both curves: completed jobs
per virtual second, and the p99 admission-to-start wait.  The curves
must have the canonical queueing shape — throughput tracking offered
load below the knee then flattening at capacity, tail latency near
zero below the knee then growing as the queue backs up and admission
control sheds load.

The default SLOs ride along: the sweep must be alert-quiet below the
knee and page at the saturated point (the burn-rate rules fire exactly
where the queueing curves bend), and the saturated run's per-tenant
chargeback rows must sum to the whole-service totals.

Also runnable standalone (the CI saturation + slo steps)::

    PYTHONPATH=src python benchmarks/bench_cluster_service.py \\
        --out service_sweep.json --alerts alert-timeline.json

which writes the sweep points as JSON, exports the saturated run for
``python -m repro.obs slo`` replay, and exits nonzero if the curve
shape or the alert calibration is violated.
"""

import json
import math
import sys

from repro.bench import service as bench_service

#: offered load must buy at least this much throughput growth between
#: the idle and knee points (linear region sanity)
MIN_LINEAR_GAIN = 1.5

#: rates at or below this must be alert-quiet (the knee of the default
#: sweep sits between 4000 and 8000 jobs/s on the 4-node pool)
QUIET_RATE = 4000.0


def _run_sweep():
    return bench_service.service_load_sweep()


def _check_sweep(points):
    assert len(points) == len(bench_service.SWEEP_RATES)
    idle, sat = points[0], points[-1]
    # Linear region: throughput tracks offered load while unloaded.
    assert sat["throughput"] > MIN_LINEAR_GAIN * idle["throughput"], (
        f"throughput never rose above the idle point "
        f"({idle['throughput']:.0f} -> {sat['throughput']:.0f} jobs/s)"
    )
    # Saturation: the tail wait is strictly worse than at idle, and
    # admission control is shedding rather than queueing unboundedly.
    assert sat["p99_queue_wait"] > idle["p99_queue_wait"], (
        "p99 queue wait did not grow under saturation"
    )
    assert sat["rejected"] > 0, "saturated point shed no load"
    # Every admitted job ran: this sweep injects no faults.
    assert all(p["failed"] == 0 for p in points)
    # Monotone tail latency in offered load (same stream, only the
    # arrival spacing changes).
    waits = [p["p99_queue_wait"] for p in points]
    assert waits == sorted(waits), f"p99 wait not monotone in load: {waits}"
    # SLO calibration: quiet below the knee, paging at saturation.
    for p in points:
        if p["rate"] <= QUIET_RATE:
            assert p["alerts"] == 0, (
                f"burn-rate alert fired at unsaturated load "
                f"{p['rate']:.0f} jobs/s"
            )
    assert sat["alerts"] > 0, "saturated point fired no burn-rate alert"
    assert sat["budget_burn"] > 1.0, (
        "saturated point did not overspend its error budget"
    )


def _check_saturated_run(result):
    """The full-loop checks that need the ServiceResult itself."""
    assert result.alerts, "no alerts on the saturated run"
    # Every alert is sim-timestamped inside the run and resolved by
    # the end (finish() closes still-breaching alerts at `elapsed`).
    for alert in result.alerts:
        assert 0.0 <= alert.fired_at <= result.elapsed
        assert alert.resolved_at is not None
    fires = [e for e in result.timeline if e["kind"] == "fire"]
    assert len(fires) == len(result.alerts)
    # Chargeback conservation: per-tenant rows sum to the totals row.
    report = result.chargeback()
    totals = report.total
    for field in (
        "jobs_completed",
        "jobs_failed",
        "jobs_rejected",
        "gpu_seconds",
        "network_bytes",
        "queue_wait_seconds",
        "leaked_bytes",
    ):
        summed = sum(getattr(row, field) for row in report.rows)
        assert math.isclose(
            summed, getattr(totals, field), rel_tol=1e-9, abs_tol=1e-9
        ), f"chargeback {field}: tenant rows sum {summed} != total"
    # Whole-service cross-check against the job records.
    assert totals.jobs_completed == len(result.completed)
    assert totals.jobs_rejected == len(result.rejected)
    # Bounded memory: the windowed series retain at most
    # history-per-ring windows regardless of run length.
    snapshot = result.windows
    spec = snapshot["spec"]
    for groups in snapshot["families"].values():
        for group in groups:
            retained = [w for w in group["windows"] if w["count"] > 0]
            assert len(retained) <= spec["history"]


def test_service_load_sweep(benchmark):
    """Throughput + p99-wait curves over the offered-load sweep."""
    from conftest import run_once

    points = run_once(benchmark, _run_sweep)
    print()
    bench_service.print_sweep(points)
    _check_sweep(points)


def test_service_gate_point(benchmark):
    """The regression-gated idle/saturated points reproduce exactly."""
    from conftest import run_once

    metrics = run_once(benchmark, bench_service.service_gate_metrics)
    again = bench_service.service_gate_metrics()
    assert metrics == again, "service gate metrics are not deterministic"
    assert metrics["service.sat.rejected"] > 0
    assert metrics["service.slo.idle.alerts"] == 0
    assert metrics["service.slo.sat.alerts"] > 0


def test_saturated_run_full_loop(benchmark):
    """Alerts, incident timeline, chargeback conservation at saturation."""
    from conftest import run_once

    result = run_once(
        benchmark, lambda: bench_service.run_service(bench_service.SATURATION_RATE)
    )
    _check_saturated_run(result)


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", help="write the sweep points as JSON")
    parser.add_argument(
        "--alerts",
        help="export the saturated run (records + alerts + chargeback) "
        "for `python -m repro.obs slo` replay",
    )
    args = parser.parse_args(argv)
    points = _run_sweep()
    bench_service.print_sweep(points)
    sat_result = bench_service.run_service(bench_service.SATURATION_RATE)
    print()
    from repro.obs.slo import render_slo

    print(render_slo(sat_result.slo_report, sat_result.timeline))
    print()
    print(sat_result.chargeback().render())
    if args.out:
        with open(args.out, "w") as fh:
            json.dump({"points": points}, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"sweep written to {args.out}")
    if args.alerts:
        sat_result.export(args.alerts)
        print(f"saturated-run export written to {args.alerts}")
    try:
        _check_sweep(points)
        _check_saturated_run(sat_result)
    except AssertionError as exc:
        print(f"FAIL: {exc}")
        return 1
    print(
        "PASS: service curves have the expected queueing shape and the "
        "SLO loop closes (quiet at idle, paging at saturation)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
