"""Multi-tenant service load sweep: throughput and p99 queue latency.

Drives the :class:`~repro.cluster.service.ClusterService` with the
seeded mixed job stream (Cannon / Minimod / allreduce gangs) at offered
loads from idle to saturated, and reports both curves: completed jobs
per virtual second, and the p99 admission-to-start wait.  The curves
must have the canonical queueing shape — throughput tracking offered
load below the knee then flattening at capacity, tail latency near
zero below the knee then growing as the queue backs up and admission
control sheds load.

Also runnable standalone (the CI saturation step)::

    PYTHONPATH=src python benchmarks/bench_cluster_service.py --out service_sweep.json

which writes the sweep points as JSON and exits nonzero if the curve
shape is violated.
"""

import json
import sys

from repro.bench import service as bench_service

#: offered load must buy at least this much throughput growth between
#: the idle and knee points (linear region sanity)
MIN_LINEAR_GAIN = 1.5


def _run_sweep():
    return bench_service.service_load_sweep()


def _check_sweep(points):
    assert len(points) == len(bench_service.SWEEP_RATES)
    idle, sat = points[0], points[-1]
    # Linear region: throughput tracks offered load while unloaded.
    assert sat["throughput"] > MIN_LINEAR_GAIN * idle["throughput"], (
        f"throughput never rose above the idle point "
        f"({idle['throughput']:.0f} -> {sat['throughput']:.0f} jobs/s)"
    )
    # Saturation: the tail wait is strictly worse than at idle, and
    # admission control is shedding rather than queueing unboundedly.
    assert sat["p99_queue_wait"] > idle["p99_queue_wait"], (
        "p99 queue wait did not grow under saturation"
    )
    assert sat["rejected"] > 0, "saturated point shed no load"
    # Every admitted job ran: this sweep injects no faults.
    assert all(p["failed"] == 0 for p in points)
    # Monotone tail latency in offered load (same stream, only the
    # arrival spacing changes).
    waits = [p["p99_queue_wait"] for p in points]
    assert waits == sorted(waits), f"p99 wait not monotone in load: {waits}"


def test_service_load_sweep(benchmark):
    """Throughput + p99-wait curves over the offered-load sweep."""
    from conftest import run_once

    points = run_once(benchmark, _run_sweep)
    print()
    bench_service.print_sweep(points)
    _check_sweep(points)


def test_service_gate_point(benchmark):
    """The regression-gated idle/saturated points reproduce exactly."""
    from conftest import run_once

    metrics = run_once(benchmark, bench_service.service_gate_metrics)
    again = bench_service.service_gate_metrics()
    assert metrics == again, "service gate metrics are not deterministic"
    assert metrics["service.sat.rejected"] > 0


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", help="write the sweep points as JSON")
    args = parser.parse_args(argv)
    points = _run_sweep()
    bench_service.print_sweep(points)
    if args.out:
        with open(args.out, "w") as fh:
            json.dump({"points": points}, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"sweep written to {args.out}")
    try:
        _check_sweep(points)
    except AssertionError as exc:
        print(f"FAIL: {exc}")
        return 1
    print("PASS: service curves have the expected queueing shape")
    return 0


if __name__ == "__main__":
    sys.exit(main())
