"""Plan-lowered vs hand-written applications at figure scale.

The tentpole bound, asserted directly: on the Fig. 7/8 problem sizes
the optimized communication plan must *match or beat* the hand-written
loops.  Because the optimizer derives the hand-tuned overlap schedule
mechanically, "match" is exact — the plan-lowered Cannon equals the
hand DiOMP Cannon to the last digit, and the plan-lowered Minimod
equals the hand overlap loop while beating the naive loop.

Also runnable standalone (the CI plan step)::

    PYTHONPATH=src python benchmarks/bench_plan_apps.py --out plan_profile.json

which prints the comparison, writes it as JSON, and exits nonzero if
any bound is violated.
"""

import json
import sys

from repro.bench import planbench


def _check_cannon(cannon):
    assert cannon["plan"] > 0
    assert cannon["plan"] <= cannon["hand"], (
        f"optimized Cannon plan ({cannon['plan']:.6g}s) slower than the "
        f"hand-written loop ({cannon['hand']:.6g}s)"
    )


def _check_minimod(minimod):
    assert minimod["plan"] > 0
    assert minimod["plan"] <= minimod["hand"], (
        f"optimized Minimod plan ({minimod['plan']:.6g}s) slower than the "
        f"hand-written overlap loop ({minimod['hand']:.6g}s)"
    )
    assert minimod["plan"] < minimod["naive"], (
        f"optimized Minimod plan ({minimod['plan']:.6g}s) does not beat "
        f"the naive hand loop ({minimod['naive']:.6g}s)"
    )


def _check_counts(counts):
    # Structural pipeline statistics for the Fig. 8 Minimod plan
    # (radius-4 halo on 4 ranks): any drift is a pass change.
    assert counts["halo_expanded"] == 8
    assert counts["ops_coalesced"] == 6
    assert counts["computes_overlapped"] == 3


def test_plan_cannon_matches_hand(benchmark):
    from conftest import run_once

    cannon = run_once(benchmark, planbench.cannon_compare)
    print(
        f"\ncannon n={planbench.CANNON_N}: hand {cannon['hand']:.6g}s, "
        f"plan {cannon['plan']:.6g}s (ratio {cannon['plan'] / cannon['hand']:.4f})"
    )
    _check_cannon(cannon)


def test_plan_minimod_matches_hand_beats_naive(benchmark):
    from conftest import run_once

    minimod = run_once(benchmark, planbench.minimod_compare)
    print(
        f"\nminimod {planbench.MINIMOD_GRID}^3: naive {minimod['naive']:.6g}s, "
        f"hand overlap {minimod['hand']:.6g}s, plan {minimod['plan']:.6g}s "
        f"(vs naive {minimod['plan'] / minimod['naive']:.4f})"
    )
    _check_minimod(minimod)
    _check_counts(planbench.minimod_pass_counts())


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", help="write the comparison as JSON")
    args = parser.parse_args(argv)
    cannon = planbench.cannon_compare()
    minimod = planbench.minimod_compare()
    counts = planbench.minimod_pass_counts()
    print(
        f"cannon : hand {cannon['hand']:.6g}s, plan {cannon['plan']:.6g}s "
        f"(ratio {cannon['plan'] / cannon['hand']:.4f})\n"
        f"minimod: naive {minimod['naive']:.6g}s, hand {minimod['hand']:.6g}s, "
        f"plan {minimod['plan']:.6g}s "
        f"(vs naive {minimod['plan'] / minimod['naive']:.4f})\n"
        f"passes : {', '.join(f'{k}={v}' for k, v in sorted(counts.items()) if v)}"
    )
    if args.out:
        doc = {"cannon": cannon, "minimod": minimod, "pass_counts": counts}
        with open(args.out, "w") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.out}")
    _check_cannon(cannon)
    _check_minimod(minimod)
    _check_counts(counts)
    return 0


if __name__ == "__main__":
    sys.exit(main())
