"""Listings 1/2 — halo-exchange programmability comparison.

The paper: "DiOMP significantly reduces programming complexity,
requiring approximately half the lines of code to achieve equivalent
data transfers."  We measure the effective SLOC and communication API
calls of the per-step halo-exchange blocks of our two executable
Minimod variants.
"""

from conftest import run_once

from repro.bench import figures


def test_listings_halo_exchange_complexity(benchmark):
    data = run_once(benchmark, figures.listings)
    figures.print_listings(data)
    diomp, mpi = data["diomp"], data["mpi"]
    # Roughly half the code...
    assert diomp.sloc <= 0.65 * mpi.sloc
    # ...and fewer communication API calls.
    assert diomp.api_calls < mpi.api_calls
