"""Fig. 6 — collective latency ratio heatmap, log10(MPI/DiOMP).

Configurations from §4.3: A = 16 nodes x 4 A100 (64 GPUs), B = 8 nodes
x 8 GCDs (64 devices), C = 16 GH200 nodes.

Expected shape: MPI wins small messages (OMPCCL launch/init overhead →
negative cells); DiOMP wins large messages on the NCCL platforms A and
C; on RCCL platform B the broadcast advantage concentrates at medium
sizes and large AllReduce lands near parity.
"""

from conftest import run_once

from repro.bench import figures
from repro.util.units import KiB, MiB


def test_fig6_collective_ratio(benchmark):
    heatmap = run_once(benchmark, figures.fig6, fast=True)
    figures.print_fig6(heatmap)
    cells = {key: dict(points) for key, points in heatmap.items()}
    small, medium, large = 128 * KiB, 2 * MiB, 64 * MiB
    # MPI wins (or at worst ties) small messages: OMPCCL launch/init
    # overheads dominate there.
    for key, by_size in cells.items():
        assert by_size[small] < 0.1, key
    assert sum(1 for b in cells.values() if b[small] < 0) >= 4
    # DiOMP ahead at 64 MiB on the NCCL platforms, strongly on A where
    # NCCL's channels aggregate all four NICs.
    for op in ("bcast", "allreduce"):
        assert cells[("A", op)][large] > 0.3, op
        assert cells[("C", op)][large] > 0.1, op
    # RCCL platform B: broadcast advantage at medium size...
    assert cells[("B", "bcast")][medium] > 0.2
    # ...and large AllReduce much closer to MPI than on NCCL platform A.
    assert cells[("B", "allreduce")][large] < cells[("A", "allreduce")][large]
    assert cells[("B", "allreduce")][large] < 0.3
