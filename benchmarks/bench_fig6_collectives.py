"""Fig. 6 — collective latency ratio heatmap, log10(MPI/DiOMP).

Configurations from §4.3: A = 16 nodes x 4 A100 (64 GPUs), B = 8 nodes
x 8 GCDs (64 devices), C = 16 GH200 nodes.

Expected shape: MPI wins small messages (OMPCCL launch/init overhead →
negative cells); DiOMP wins large messages on the NCCL platforms A and
C; on RCCL platform B the broadcast advantage concentrates at medium
sizes and large AllReduce lands near parity.
"""

import numpy as np
from conftest import run_once

from repro.bench import collective, figures
from repro.cluster import World, run_spmd
from repro.core import DiompParams, DiompRuntime
from repro.hardware.platforms import get_platform
from repro.util.units import KiB, MiB


def test_fig6_collective_ratio(benchmark):
    heatmap = run_once(benchmark, figures.fig6, fast=True)
    figures.print_fig6(heatmap)
    cells = {key: dict(points) for key, points in heatmap.items()}
    small, medium, large = 128 * KiB, 2 * MiB, 64 * MiB
    # MPI wins (or at worst ties) small messages: OMPCCL launch/init
    # overheads dominate there.
    for key, by_size in cells.items():
        assert by_size[small] < 0.1, key
    assert sum(1 for b in cells.values() if b[small] < 0) >= 4
    # DiOMP ahead at 64 MiB on the NCCL platforms, strongly on A where
    # NCCL's channels aggregate all four NICs.
    for op in ("bcast", "allreduce"):
        assert cells[("A", op)][large] > 0.3, op
        assert cells[("C", op)][large] > 0.1, op
    # RCCL platform B: broadcast advantage at medium size...
    assert cells[("B", "bcast")][medium] > 0.2
    # ...and large AllReduce much closer to MPI than on NCCL platform A.
    assert cells[("B", "allreduce")][large] < cells[("A", "allreduce")][large]
    assert cells[("B", "allreduce")][large] < 0.3


def test_fig6_allreduce_algorithm_ablation(benchmark):
    """Algorithm ablation on a 2-node x 4-GPU slice of platform A.

    The hierarchical ring (NVLink reduce-scatter / NIC ring / NVLink
    all-gather) must beat the flat ring strictly at 64 MiB, the
    auto-selector must pick it, and the selected algorithm must also
    beat the MPI baseline.
    """
    size = 64 * MiB
    spec = get_platform("A")
    times, selected = run_once(
        benchmark, collective.allreduce_algorithm_ablation, spec, 2, size, reps=2
    )
    print("\nAllReduce 64 MiB, platform A, 2 nodes x 4 GPUs:")
    for algo, t in sorted(times.items(), key=lambda kv: kv[1]):
        print(f"  {algo:>10}: {t * 1e6:9.1f} us")
    assert selected == "hier_ring"
    assert times["hier_ring"] < times["ring"]
    assert times["auto"] == times["hier_ring"]
    t_mpi = collective.mpi_collective_latency(spec, 2, "allreduce", size, reps=2)
    assert times["auto"] < t_mpi


def test_fig6_hier_allreduce_bit_identical(benchmark):
    """Forced hierarchical and flat-ring AllReduce produce the same
    bytes: the simulator applies reductions in device-slot order for
    every algorithm, so results cannot drift with the schedule."""

    def result_for(algo):
        size = 256 * KiB
        n = size // 8
        world = World(get_platform("A"), num_nodes=2)
        DiompRuntime(world, DiompParams(segment_size=4 * size + (1 << 20)))
        out = {}

        def prog(ctx):
            send = ctx.diomp.alloc(size)
            recv = ctx.diomp.alloc(size)
            rng = np.random.default_rng(7 + ctx.rank)
            send.typed(np.float64)[:] = rng.standard_normal(n)
            ctx.diomp.barrier()
            ctx.diomp.allreduce(send, recv, algo=algo)
            out[ctx.rank] = recv.typed(np.float64).copy()

        run_spmd(world, prog)
        return out

    ring, hier = run_once(
        benchmark, lambda: (result_for("ring"), result_for("hier_ring"))
    )
    for rank in ring:
        np.testing.assert_array_equal(ring[rank], hier[rank])
