"""Ablation — deployment models for multi-GPU collectives (§3.3).

The paper's argument for decoupling communication groups from rank
boundaries: when one rank drives several devices, a rank-granular
library forces a **hierarchical two-phase AllReduce** (reduce across
the rank's own devices, AllReduce across ranks, broadcast back to the
devices), which "introduces extra synchronization overhead and can
degrade performance" — while OMPCCL runs **one collective over every
device slot** directly.

This bench runs both schemes in the single-process multi-GPU layout
(2 nodes x 1 rank x 4 GPUs) and compares completion times.
"""

import numpy as np

from conftest import run_once

from repro.bench.report import Table
from repro.cluster import MemRef, World, run_spmd
from repro.core import DiompParams, DiompRuntime
from repro.hardware import platform_a
from repro.mpi import MpiWorld
from repro.mpi import collectives as mpi_coll
from repro.util.units import MiB

SIZE = 8 * MiB


def _ompccl_time() -> float:
    """One OMPCCL allreduce over all 8 device slots."""
    world = World(platform_a(with_quirk=False), num_nodes=2, devices_per_rank=4)
    DiompRuntime(world, DiompParams(segment_size=4 * SIZE))

    def prog(ctx):
        sends = [MemRef.device(d.malloc(SIZE, virtual=True)) for d in ctx.devices]
        recvs = [MemRef.device(d.malloc(SIZE, virtual=True)) for d in ctx.devices]
        ctx.diomp.barrier()
        # Warm-up (channel setup), then a timed collective.
        ctx.diomp.allreduce(sends, recvs)
        ctx.diomp.barrier()
        t0 = ctx.sim.now
        ctx.diomp.allreduce(sends, recvs)
        return ctx.sim.now - t0

    return max(run_spmd(world, prog).results)


def _hierarchical_time() -> float:
    """The rank-granular workaround: local device reduction over
    NVLink, MPI AllReduce between ranks, local broadcast back."""
    world = World(platform_a(with_quirk=False), num_nodes=2, devices_per_rank=4)
    mpi = MpiWorld(world)

    def prog(ctx):
        comm = mpi.comm_world(ctx.rank)
        for d in ctx.devices:
            d.malloc(SIZE, virtual=True)
        acc = ctx.devices[0].malloc(SIZE, virtual=True)
        mpi_coll.barrier(comm)
        t0 = ctx.sim.now
        # Phase 1: reduce the rank's own devices into device 0 (three
        # NVLink pulls + three reduction kernels, serialized on dev 0).
        from repro.device.kernel import Kernel, KernelCost

        reduce_kernel = Kernel(
            "local-reduce", cost=lambda: KernelCost(SIZE / 8, 3 * SIZE)
        )
        for d in range(1, 4):
            fut = world.fabric.transfer(
                ctx.devices[d].device_id,
                ctx.devices[0].device_id,
                SIZE,
                operation="put",
                gpu_memory=True,
            )
            fut.wait()
            ctx.devices[0].launch(reduce_kernel, cost_args=()).wait()
        # Phase 2: inter-rank AllReduce on the accumulated buffer.
        mpi_coll.allreduce(
            comm,
            MemRef.device(acc),
            MemRef.device(acc),
            np.float64,
        )
        # Phase 3: broadcast the result back to the local devices.
        for d in range(1, 4):
            world.fabric.transfer(
                ctx.devices[0].device_id,
                ctx.devices[d].device_id,
                SIZE,
                operation="put",
                gpu_memory=True,
            ).wait()
        return ctx.sim.now - t0

    return max(run_spmd(world, prog).results)


def _run():
    return {
        "OMPCCL (one collective over 8 device slots)": _ompccl_time(),
        "hierarchical two-phase (rank-granular MPI)": _hierarchical_time(),
    }


def test_ablation_deployment_models(benchmark):
    data = run_once(benchmark, _run)
    table = Table(
        "Ablation - 8 MiB AllReduce over 8 GPUs, single process per node",
        ["scheme", "elapsed (us)"],
    )
    for name, t in data.items():
        table.add_row(name, f"{t * 1e6:.2f}")
    table.print()
    ompccl = data["OMPCCL (one collective over 8 device slots)"]
    hier = data["hierarchical two-phase (rank-granular MPI)"]
    assert ompccl < hier  # §3.3's claim
