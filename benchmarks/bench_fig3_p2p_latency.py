"""Fig. 3 — point-to-point latency, DiOMP vs MPI RMA (4 B–8 KiB).

Expected shape (paper §4.2): DiOMP outperforms MPI in both put and get
latency on every platform and at every size in this range.
"""

from conftest import run_once

from repro.bench import figures


def test_fig3_p2p_latency(benchmark):
    data = run_once(benchmark, figures.fig3, fast=True)
    figures.print_fig3(data)
    for platform, curves in data.items():
        for size_idx in range(len(curves["diomp_put"])):
            size, diomp_put = curves["diomp_put"][size_idx]
            _, diomp_get = curves["diomp_get"][size_idx]
            _, mpi_put = curves["mpi_put"][size_idx]
            _, mpi_get = curves["mpi_get"][size_idx]
            assert diomp_put < mpi_put, (platform, size)
            assert diomp_get < mpi_get, (platform, size)
