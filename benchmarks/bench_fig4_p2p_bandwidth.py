"""Fig. 4 — point-to-point bandwidth, DiOMP vs MPI RMA (to 64 MiB).

Expected shape (paper §4.2): DiOMP wins everywhere **except** DiOMP
Put on Slingshot+A100, where the vendor-confirmed NIC/driver anomaly
degrades it well below MPI — reproduced by the NIC quirk model.
"""

from conftest import run_once

from repro.bench import figures
from repro.util.units import MiB


def test_fig4_p2p_bandwidth(benchmark):
    data = run_once(benchmark, figures.fig4, fast=True)
    figures.print_fig4(data)
    # Healthy paths: DiOMP above MPI at large sizes.
    for platform, curves in data.items():
        for idx, (size, diomp_get) in enumerate(curves["diomp_get"]):
            if size >= 1 * MiB:
                assert diomp_get > curves["mpi_get"][idx][1], (platform, size)
    ib = data["infiniband+GH200"]
    for idx, (size, diomp_put) in enumerate(ib["diomp_put"]):
        if size >= 1 * MiB:
            assert diomp_put > ib["mpi_put"][idx][1]
    # The anomaly: DiOMP put collapses on Slingshot+A100 only.
    ss = data["slingshot+A100"]
    for idx, (size, diomp_put) in enumerate(ss["diomp_put"]):
        if size >= 1 * MiB:
            assert diomp_put < 0.5 * ss["mpi_put"][idx][1], size
