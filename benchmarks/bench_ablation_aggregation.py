"""Ablation — small-message RMA aggregation and pointer prefetch.

Many fine-grained puts issued between fences pay one conduit software
overhead plus one NIC message overhead *each*; the aggregation engine
coalesces them into one conduit message per destination (GASNet-EX
access-region batching), amortizing both.  This bench sweeps small
messages cross-node and reports conduit message counts and simulated
wall-clock for both modes, asserting the acceptance bar: >= 2x fewer
conduit operations, lower elapsed time, bit-identical received data.
The prefetch half measures asymmetric-access pointer misses with and
without the allocation-time bulk exchange.
"""

import numpy as np

from conftest import run_once

from repro.bench.report import Table
from repro.cluster import MemRef, World, run_spmd
from repro.core import DiompParams, DiompRuntime, RmaAggregationParams
from repro.hardware import platform_a
from repro.util.units import KiB

MSGS = 16
MSG_BYTES = 1 * KiB


def _sweep(aggregate: bool) -> dict:
    """8 ranks over 2 nodes; every rank puts MSGS small messages to
    its cross-node peer, then fences."""
    world = World(platform_a(with_quirk=False), num_nodes=2, ranks_per_node=4)
    DiompRuntime(
        world,
        DiompParams(aggregation=RmaAggregationParams(enabled=aggregate)),
    )
    received = {}

    def prog(ctx):
        g = ctx.diomp.alloc(MSGS * MSG_BYTES)
        g.typed(np.uint8)[:] = 0
        ctx.diomp.barrier()
        peer = (ctx.rank + 4) % 8
        for i in range(MSGS):
            src = np.full(MSG_BYTES, (ctx.rank + i) % 251 + 1, dtype=np.uint8)
            ctx.diomp.put(
                peer, g, MemRef.host(ctx.node, src), target_offset=i * MSG_BYTES
            )
        ctx.diomp.fence()
        ctx.diomp.barrier()
        received[ctx.rank] = g.typed(np.uint8).copy()

    res = run_spmd(world, prog)
    return {
        "elapsed": res.elapsed,
        "messages": world.obs.value("conduit.messages", op="put"),
        "batches": world.obs.value("rma.agg.batches"),
        "received": np.concatenate([received[r] for r in sorted(received)]),
    }


def _prefetch(enabled: bool) -> dict:
    world = World(platform_a(with_quirk=False), num_nodes=2, ranks_per_node=2)
    DiompRuntime(world, DiompParams(pointer_prefetch=enabled))

    def prog(ctx):
        abuf = ctx.diomp.alloc_asymmetric((ctx.rank + 1) * KiB)
        if abuf.data is not None:
            abuf.data.as_array(np.uint8)[:] = ctx.rank
        ctx.diomp.barrier()
        dst = np.zeros(KiB, dtype=np.uint8)
        for target in range(4):
            if target != ctx.rank:
                ctx.diomp.get(target, abuf, MemRef.host(ctx.node, dst))
                ctx.diomp.fence()
        ctx.diomp.barrier()

    res = run_spmd(world, prog)
    return {
        "elapsed": res.elapsed,
        "misses": world.obs.value("rma.pointer_cache", event="miss"),
        "prefetched": world.obs.value("rma.pointer_cache", event="prefetch"),
    }


def _run():
    return {
        "agg_off": _sweep(False),
        "agg_on": _sweep(True),
        "prefetch_off": _prefetch(False),
        "prefetch_on": _prefetch(True),
    }


def test_ablation_aggregation(benchmark):
    data = run_once(benchmark, _run)
    table = Table(
        f"Ablation - RMA aggregation ({MSGS} x {MSG_BYTES // KiB} KiB "
        "puts/rank, 8 ranks cross-node)",
        ["config", "conduit put msgs", "batches", "elapsed (us)"],
    )
    for name in ("agg_off", "agg_on"):
        stats = data[name]
        table.add_row(
            name,
            int(stats["messages"]),
            int(stats["batches"]),
            f"{stats['elapsed'] * 1e6:.2f}",
        )
    table.print()
    ptable = Table(
        "Ablation - pointer prefetch (asymmetric gets, 4 ranks)",
        ["config", "pointer misses", "prefetched", "elapsed (us)"],
    )
    for name in ("prefetch_off", "prefetch_on"):
        stats = data[name]
        ptable.add_row(
            name,
            int(stats["misses"]),
            int(stats["prefetched"]),
            f"{stats['elapsed'] * 1e6:.2f}",
        )
    ptable.print()
    # Acceptance: >= 2x fewer conduit operations, lower wall-clock,
    # bit-identical received bytes.
    assert data["agg_off"]["messages"] >= 2 * data["agg_on"]["messages"]
    assert data["agg_on"]["elapsed"] < data["agg_off"]["elapsed"]
    assert np.array_equal(data["agg_off"]["received"], data["agg_on"]["received"])
    # Prefetch removes every per-miss pointer round-trip.
    assert data["prefetch_off"]["misses"] > 0
    assert data["prefetch_on"]["misses"] == 0
