"""Ablation — linear heap allocator vs buddy allocator (§3.1).

The paper mentions both strategies for subdividing the global segment.
This bench contrasts their throughput and fragmentation behaviour on a
mixed alloc/free workload, and verifies both preserve the symmetric-
offset determinism the PGAS translation depends on.
"""

import random

from conftest import run_once

from repro.bench.report import Table
from repro.core.allocator import BuddyAllocator, LinearAllocator
from repro.util.units import KiB, MiB


def _churn(allocator, ops=2000, seed=7):
    """Mixed allocate/free workload; returns live-set stats."""
    rng = random.Random(seed)
    live = []
    peak_live_bytes = 0
    for _ in range(ops):
        if live and rng.random() < 0.45:
            allocator.free(live.pop(rng.randrange(len(live))))
        else:
            size = rng.choice([256, 1024, 4 * KiB, 64 * KiB, 1 * MiB])
            try:
                live.append(allocator.alloc(size))
            except Exception:
                if not live:
                    raise
                allocator.free(live.pop(0))
        peak_live_bytes = max(peak_live_bytes, allocator.allocated_bytes)
    for off in live:
        allocator.free(off)
    return peak_live_bytes


def _run():
    out = {}
    for kind, factory in (
        ("linear", lambda: LinearAllocator(256 * MiB)),
        ("buddy", lambda: BuddyAllocator(256 * MiB)),
    ):
        alloc = factory()
        peak = _churn(alloc)
        out[kind] = {
            "peak_bytes": peak,
            "free_after": alloc.free_bytes,
            "live_after": alloc.live_allocations,
        }
    return out


def test_ablation_allocators(benchmark):
    data = run_once(benchmark, _run)
    table = Table(
        "Ablation - segment allocators under churn (2000 mixed ops)",
        ["allocator", "peak allocated", "free after drain", "leaks"],
    )
    for kind, stats in data.items():
        table.add_row(kind, stats["peak_bytes"], stats["free_after"], stats["live_after"])
    table.print()
    for kind, stats in data.items():
        assert stats["live_after"] == 0, kind
        assert stats["free_after"] in (256 * MiB, 2 ** (256 * MiB).bit_length() // 2)
    # Buddy rounds sizes up: its peak footprint is at least linear's.
    assert data["buddy"]["peak_bytes"] >= data["linear"]["peak_bytes"]


def test_ablation_symmetric_determinism(benchmark):
    """Identical call sequences give identical offsets for both kinds —
    the invariant symmetric allocation rests on."""

    def run():
        seqs = {}
        for kind, factory in (
            ("linear", lambda: LinearAllocator(64 * MiB)),
            ("buddy", lambda: BuddyAllocator(64 * MiB)),
        ):
            offsets = []
            for _replica in range(2):
                alloc = factory()
                trace = []
                for size in (300, 4096, 1024, 65536, 128):
                    trace.append(alloc.alloc(size))
                alloc.free(trace[1])
                trace.append(alloc.alloc(2048))
                offsets.append(tuple(trace))
            seqs[kind] = offsets
        return seqs

    data = run_once(benchmark, run)
    for kind, (a, b) in data.items():
        assert a == b, kind
