"""Telemetry at scale: a 1024-rank allreduce sweep under a span budget.

The observability layer must not become the bottleneck it measures: at
1024 ranks an unbudgeted span store and per-rank metric series grow
linearly with the world, while the budgeted store holds a fixed
memory ceiling and rollups keep the export size flat.  This benchmark
drives the full telemetry pipeline — engine self-profiling, budgeted
span collection, cross-rank rollups, anomaly detection — at the
paper-scale rank count and asserts the retention contract holds.
"""

from conftest import run_once

from repro.bench import collective
from repro.hardware.platforms import get_platform
from repro.obs.sampling import SPAN_COST_BYTES, SpanBudget
from repro.util.units import KiB, MiB

#: 256 nodes x 4 GPUs on platform A = 1024 ranks
SCALE_NODES = 256
SCALE_RANKS = 1024

#: hard span-memory ceiling for the sweep (2048 spans at 512 B/span)
SCALE_BUDGET = SpanBudget(max_bytes=1 * MiB, per_track_head=1, per_track_reservoir=4)


def test_scale_allreduce_telemetry_1024(benchmark):
    """1024-rank allreduce with full telemetry inside a 1 MiB span budget."""
    spec = get_platform("A")
    stats = run_once(
        benchmark,
        collective.allreduce_engine_stats,
        spec,
        SCALE_NODES,
        256 * KiB,
        reps=2,
        span_budget=SCALE_BUDGET,
    )
    spans = stats["span_stats"]
    print(
        f"\n1024-rank allreduce sweep: {stats['events']} events, "
        f"{stats['events_per_sec']:,.0f} events/s, "
        f"wall/simsec {stats['wall_per_simsec']:,.0f}"
    )
    print(
        f"span store: recorded {spans['recorded']}, kept {spans['kept']}, "
        f"dropped {spans['dropped']}, resident "
        f"{spans['memory_bytes'] / 1024:.0f} KiB "
        f"(budget {SCALE_BUDGET.max_bytes / 1024:.0f} KiB)"
    )
    # The engine numbers feeding the regression gate are populated.
    assert stats["events"] > SCALE_RANKS
    assert stats["events_per_sec"] > 0
    assert stats["wall_per_simsec"] > 0
    # The retention contract: the hard budget held, sampling engaged,
    # and the bookkeeping is consistent.
    assert spans["memory_bytes"] <= SCALE_BUDGET.max_bytes
    assert spans["kept"] <= SCALE_BUDGET.max_spans
    assert spans["sampling"]
    assert spans["recorded"] == spans["kept"] + spans["dropped"]
    assert spans["recorded"] > SCALE_BUDGET.max_spans
    assert spans["memory_bytes"] == spans["kept"] * SPAN_COST_BYTES
