"""Fig. 5 — GASNet-EX vs GPI-2 bandwidth over NDR InfiniBand.

Expected shape (paper §4.2): "GPI-2 outperforms GASNet-EX Put in
certain scenarios" — small/medium messages — while GASNet-EX pipelines
the largest transfers at least as well.
"""

from conftest import run_once

from repro.bench import figures
from repro.util.units import KiB, MiB


def test_fig5_conduit_bandwidth(benchmark):
    data = run_once(benchmark, figures.fig5, fast=True)
    figures.print_fig5(data)
    by_size = {name: dict(points) for name, points in data.items()}
    # GPI-2 wins the mid-size range...
    for size in (64 * KiB, 256 * KiB, 1 * MiB):
        assert by_size["gpi2_put"][size] > by_size["gasnet_put"][size], size
    # ...GASNet-EX wins the very large range.
    for size in (16 * MiB, 64 * MiB):
        assert by_size["gasnet_put"][size] >= by_size["gpi2_put"][size], size
