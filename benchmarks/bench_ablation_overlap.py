"""Ablation — communication/computation overlap in Minimod.

The synchronous halo exchange (Listing 1) pays comm + compute in
series; the overlap variant hides the exchange under the interior
stencil update.  The benefit grows with the communication share, so we
measure a comm-heavy configuration (thin slabs across nodes).
"""

from conftest import run_once

from repro.apps import MinimodConfig, run_minimod
from repro.bench.report import Table
from repro.cluster import World
from repro.hardware import platform_a


def _time(impl: str) -> float:
    cfg = MinimodConfig(nx=480, ny=480, nz=480, steps=5, execute=False)
    world = World(platform_a(with_quirk=False), num_nodes=2)
    res = run_minimod(world, cfg, impl=impl)
    return max(r["elapsed"] for r in res.results)


def _run():
    return {impl: _time(impl) for impl in ("mpi", "diomp", "diomp-overlap")}


def test_ablation_halo_overlap(benchmark):
    data = run_once(benchmark, _run)
    table = Table(
        "Ablation - Minimod 480^3, 5 steps, 8 GPUs / 2 nodes",
        ["variant", "elapsed (ms)", "vs MPI"],
    )
    for impl in ("mpi", "diomp", "diomp-overlap"):
        table.add_row(
            impl, f"{data[impl] * 1e3:.3f}", f"{data['mpi'] / data[impl]:.2f}x"
        )
    table.print()
    assert data["diomp"] < data["mpi"]
    assert data["diomp-overlap"] <= data["diomp"] * 1.001
