"""The 1024-rank scaling sweep: allreduce + Cannon in seconds.

ROADMAP's scale goal made concrete: a 1024-rank (platform A, 256
nodes x 4 GPUs) AllReduce sweep and a Cannon ring rotation, both in
analytic-rank mode, completing in seconds of wall clock.  Before the
calendar-queue/lazy-thread scheduler and the O(P) rendezvous linking,
the same allreduce sweep took ~27 s at 1024 ranks; the hard wall-clock
bound below keeps the engine honest.

Also runnable standalone (the CI scale step)::

    PYTHONPATH=src python benchmarks/bench_scale_1024.py --out scale_profile.json

which writes the engine profile numbers as JSON and exits nonzero if
the wall-clock bound is violated.
"""

import json
import sys

from repro.bench import scale
from repro.hardware.platforms import get_platform
from repro.util.units import KiB

#: hard wall-clock bound (seconds) for each 1024-rank sweep — the
#: acceptance criterion; generous vs the ~2 s measured at refactor
#: time to absorb slow CI hardware.
WALL_BOUND = 30.0

#: allreduce sweep message size
SWEEP_SIZE = 256 * KiB


def _run_allreduce():
    spec = get_platform("A")
    return scale.allreduce_scale_stats(spec, scale.SCALE_NODES, SWEEP_SIZE, reps=2)


def _run_cannon():
    spec = get_platform("A")
    return scale.cannon_scale_stats(spec, scale.SCALE_NODES)


def _check_allreduce(stats):
    assert stats["ranks"] == scale.SCALE_RANKS
    assert stats["wall_seconds"] <= WALL_BOUND, (
        f"1024-rank allreduce sweep took {stats['wall_seconds']:.1f}s "
        f"(bound {WALL_BOUND:.0f}s)"
    )
    assert stats["events"] > scale.SCALE_RANKS
    assert stats["allreduce_seconds"] > 0


def _check_cannon(stats):
    assert stats["ranks"] == scale.SCALE_RANKS
    assert stats["wall_seconds"] <= WALL_BOUND, (
        f"1024-rank cannon rotation took {stats['wall_seconds']:.1f}s "
        f"(bound {WALL_BOUND:.0f}s)"
    )
    assert stats["per_step_seconds"] > 0
    assert stats["predicted_full_seconds"] == (
        stats["per_step_seconds"] * scale.SCALE_RANKS
    )


def test_scale_allreduce_1024(benchmark):
    """1024-rank analytic allreduce sweep under the wall-clock bound."""
    from conftest import run_once

    stats = run_once(benchmark, _run_allreduce)
    print(
        f"\n1024-rank allreduce ({SWEEP_SIZE // KiB} KiB): "
        f"{stats['allreduce_seconds'] * 1e3:.3f} ms modelled, "
        f"{stats['events']} events in {stats['wall_seconds']:.2f}s wall "
        f"({stats['events_per_sec']:,.0f} events/s)"
    )
    _check_allreduce(stats)


def test_scale_cannon_1024(benchmark):
    """Truncated 1024-rank Cannon rotation + full-rotation extrapolation."""
    from conftest import run_once

    stats = run_once(benchmark, _run_cannon)
    print(
        f"\n1024-rank cannon (n={scale.CANNON_N}, {stats['steps']} steps): "
        f"{stats['per_step_seconds'] * 1e3:.3f} ms/step, full rotation "
        f"{stats['predicted_full_seconds']:.3f}s modelled, "
        f"{stats['events']} events in {stats['wall_seconds']:.2f}s wall"
    )
    _check_cannon(stats)


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", help="write the profile numbers as JSON")
    args = parser.parse_args(argv)
    ar = _run_allreduce()
    cn = _run_cannon()
    doc = {"allreduce_1024": ar, "cannon_1024": cn}
    print(
        f"allreduce: {ar['events']} events, {ar['wall_seconds']:.2f}s wall, "
        f"{ar['events_per_sec']:,.0f} events/s\n"
        f"cannon   : {cn['events']} events, {cn['wall_seconds']:.2f}s wall, "
        f"{cn['per_step_seconds'] * 1e3:.3f} ms/step"
    )
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"profile written to {args.out}")
    try:
        _check_allreduce(ar)
        _check_cannon(cn)
    except AssertionError as exc:
        print(f"FAIL: {exc}")
        return 1
    print("PASS: 1024-rank sweeps within the wall-clock bound")
    return 0


if __name__ == "__main__":
    sys.exit(main())
