"""Fig. 8 — Minimod speedup (grid 1200^3) vs the MPI single-node time.

Expected shape: DiOMP above MPI at every node count on the multi-GPU
platforms (the intra-node IPC advantage is why the paper baselines on
MPI's single-node time), and at least at parity on the one-GPU-per-
node InfiniBand platform; both implementations scale.
"""

from conftest import run_once

from repro.bench import figures


def test_fig8_minimod_scaling(benchmark):
    data = run_once(benchmark, figures.fig8, fast=True)
    figures.print_fig8(data)
    # Platform A (4 GPUs/node): DiOMP strictly ahead everywhere.
    a = {impl: dict(pts) for impl, pts in data["A"].items()}
    for gpus, speedup in a["diomp"].items():
        assert speedup > a["mpi"][gpus], gpus
    # Platform C (1 GPU/node): at worst parity, and both scale.
    c = {impl: dict(pts) for impl, pts in data["C"].items()}
    for gpus, speedup in c["diomp"].items():
        assert speedup >= c["mpi"][gpus] * 0.98, gpus
    for curves in (a, c):
        seq = [curves["diomp"][g] for g in sorted(curves["diomp"])]
        assert seq == sorted(seq)  # monotone scaling
