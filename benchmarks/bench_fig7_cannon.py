"""Fig. 7 — Cannon matrix multiplication strong scaling (N = 30240).

Expected shape: DiOMP at or above MPI+OpenMP at every GPU count, with
the gap widening as nodes are added (MPI pays host-staged intra-node
hops inside the ring while DiOMP rides NVLink/xGMI via IPC).

Documented deviation (see EXPERIMENTS.md): the paper reports
*superlinear* speedups; our roofline GEMM model yields near-linear
scaling in the compute-bound regime that flattens once the ring
becomes NIC-bound.  The winner and the widening factor are preserved.
"""

from conftest import run_once

from repro.bench import figures


def test_fig7_cannon_scaling(benchmark):
    data = run_once(benchmark, figures.fig7, fast=True)
    figures.print_fig7(data)
    for platform, curves in data.items():
        diomp = dict(curves["diomp"])
        mpi = dict(curves["mpi"])
        for gpus, speedup in diomp.items():
            assert speedup >= mpi[gpus] * 0.999, (platform, gpus)
        # DiOMP keeps scaling beyond one node.
        gpu_counts = sorted(diomp)
        assert diomp[gpu_counts[-1]] > diomp[gpu_counts[0]]
        # The DiOMP/MPI gap widens with node count.
        gaps = [diomp[g] / mpi[g] for g in gpu_counts]
        assert gaps[-1] > gaps[0]
