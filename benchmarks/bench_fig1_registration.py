"""Fig. 1 ablation — unified vs duplicated memory registration.

The architectural claim of §3.1: the MPI+libomptarget baseline manages
every communicated device buffer twice (mapping table + per-window NIC
registration); DiOMP registers the global segment once at startup and
all OpenMP mappings land inside it.
"""

from conftest import run_once

from repro.bench import figures

N_BUFFERS = 16


def test_fig1_registration_bookkeeping(benchmark):
    data = run_once(benchmark, figures.fig1, n_buffers=N_BUFFERS)
    figures.print_fig1(data)
    baseline, diomp = data["baseline"], data["diomp"]
    # One window registration per communicated buffer vs one total.
    assert baseline.registrations == N_BUFFERS
    assert diomp.registrations == 1
    # Both keep a present-table entry per mapping (that part is shared).
    assert baseline.mapping_entries == diomp.mapping_entries == N_BUFFERS
    # The duplicated registrations cost real setup time.
    assert diomp.setup_time < baseline.setup_time
