"""Ablation — topology-aware hierarchical path selection (§3.2).

Disabling the hierarchy forces every transfer through the conduit/NIC
path, even between GPUs that share NVLink — quantifying what the
IPC/P2P fast path buys for intra-node RMA.
"""

from conftest import run_once

from repro.bench.report import Table
from repro.cluster import World, run_spmd
from repro.core import DiompParams, DiompRuntime
from repro.hardware import platform_a
from repro.util.units import MiB


def _put_time(hierarchical: bool, size: int = 16 * MiB) -> float:
    world = World(platform_a(with_quirk=False), num_nodes=1)
    DiompRuntime(
        world,
        DiompParams(
            segment_size=4 * size + (1 << 20), hierarchical_paths=hierarchical
        ),
    )

    def prog(ctx):
        gbuf = ctx.diomp.alloc(size, virtual=True)
        ctx.diomp.barrier()
        elapsed = None
        if ctx.rank == 0:
            # Warm up: one-time IPC handle open / path setup.
            ctx.diomp.put(1, gbuf, gbuf.memref())
            ctx.diomp.fence()
            t0 = ctx.sim.now
            ctx.diomp.put(1, gbuf, gbuf.memref())
            ctx.diomp.fence()
            elapsed = ctx.sim.now - t0
        ctx.diomp.barrier()
        return elapsed

    return run_spmd(world, prog).results[0]


def _run():
    return {
        "hierarchical (NVLink IPC)": _put_time(True),
        "forced conduit (NIC loopback)": _put_time(False),
    }


def test_ablation_hierarchical_paths(benchmark):
    data = run_once(benchmark, _run)
    table = Table(
        "Ablation - intra-node 16 MiB put path selection",
        ["path policy", "elapsed (us)"],
    )
    for name, t in data.items():
        table.add_row(name, f"{t * 1e6:.2f}")
    table.print()
    # NVLink is ~3x even the 4-NIC multirail loopback; the fast path
    # must show a clear win.
    assert data["hierarchical (NVLink IPC)"] * 2 < data["forced conduit (NIC loopback)"]
