"""Ablation — bounded stream concurrency (MAX_ACTIVE_STREAMS, §3.2).

Sweeps the stream bound over a burst of concurrent intra-node RMA
operations.  With a tight bound the pool partial-synchronizes often;
with a generous one operations pipeline freely — but the pool never
grows past the bound (the memory/scheduling pressure the policy
exists to cap).
"""


from conftest import run_once

from repro.bench.report import Table
from repro.cluster import World, run_spmd
from repro.core import DiompParams, DiompRuntime, StreamPoolParams
from repro.hardware import platform_a
from repro.util.units import MiB


def _burst_time(max_streams: int, ops: int = 12) -> dict:
    world = World(platform_a(with_quirk=False), num_nodes=1)
    DiompRuntime(
        world,
        DiompParams(
            segment_size=ops * 2 * MiB + (1 << 20),
            stream_params=StreamPoolParams(max_active_streams=max_streams),
        ),
    )
    out = {}

    def prog(ctx):
        gbuf = ctx.diomp.alloc(ops * 1 * MiB, virtual=True)
        ctx.diomp.barrier()
        if ctx.rank == 0:
            t0 = ctx.sim.now
            for i in range(ops):
                ctx.diomp.put(
                    1, gbuf, gbuf.memref(i * 1 * MiB, 1 * MiB), target_offset=i * 1 * MiB
                )
            ctx.diomp.fence()
            pool = ctx.diomp.stream_pool(0)
            out.update(
                elapsed=ctx.sim.now - t0,
                created=pool.created,
                reused=pool.reused,
                partial_syncs=pool.partial_syncs,
            )
        ctx.diomp.barrier()

    run_spmd(world, prog)
    return out


def _run():
    return {bound: _burst_time(bound) for bound in (1, 4, 16)}


def test_ablation_stream_bound(benchmark):
    data = run_once(benchmark, _run)
    table = Table(
        "Ablation - MAX_ACTIVE_STREAMS over a 12-op intra-node burst",
        ["bound", "elapsed (us)", "streams created", "reuses", "partial syncs"],
    )
    for bound, stats in sorted(data.items()):
        table.add_row(
            bound,
            f"{stats['elapsed'] * 1e6:.2f}",
            stats["created"],
            stats["reused"],
            stats["partial_syncs"],
        )
    table.print()
    for bound, stats in data.items():
        assert stats["created"] <= bound  # the bound holds
    # Tight bound forces partial synchronization; generous one does not.
    assert data[1]["partial_syncs"] > 0
    assert data[16]["partial_syncs"] == 0
    # More concurrency never hurts completion time.
    assert data[16]["elapsed"] <= data[1]["elapsed"]
